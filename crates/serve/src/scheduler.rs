//! The dynamic micro-batching scheduler: a bounded submission queue,
//! per-model batch formation, and worker threads that fan each batch out
//! across the shared thread pool.
//!
//! # Batching policy
//!
//! Requests join one FIFO queue. A worker dispatches the first model
//! group (in arrival order of its oldest request) that is *flush-ready*:
//! either [`SchedulerConfig::max_batch`] requests for that model are
//! waiting, or its oldest request has waited
//! [`SchedulerConfig::max_wait`]. Until a group is ready, workers sleep
//! on the queue's condition variable with a deadline at the oldest
//! request's flush time — so a lone request never waits longer than
//! `max_wait`, and a burst coalesces into one batch that amortizes
//! per-dispatch overhead and keeps every pool thread busy
//! (`forward_infer` over a prepared model, exactly the
//! `BatchRunner::run_batch` execution shape).
//!
//! # Admission control
//!
//! The queue is bounded ([`SchedulerConfig::queue_cap`]): when it is
//! full, [`Scheduler::submit`] returns [`ServeError::Overloaded`]
//! *immediately* instead of queueing unbounded latency. On
//! [`Scheduler::shutdown`] new work is refused
//! ([`ServeError::ShuttingDown`]) and every already-admitted request is
//! drained before the workers exit.

use crate::error::ServeError;
use crate::registry::{ModelEntry, ModelRegistry, Precision};
use crate::stats::Metrics;
use rayon::prelude::*;
use ringcnn_tensor::prelude::*;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Scheduler knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Worker threads forming and dispatching batches. Each dispatch
    /// itself parallelizes across the shared rayon pool, so a small
    /// worker count (2) already keeps the pool saturated; more workers
    /// mainly help when many distinct models are hot at once.
    pub workers: usize,
    /// Flush a model group once this many requests are waiting.
    pub max_batch: usize,
    /// Flush a model group once its oldest request has waited this long.
    pub max_wait: Duration,
    /// Bounded queue capacity (admission control).
    pub queue_cap: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_cap: 256,
        }
    }
}

/// A completed inference with its service-side timing.
#[derive(Debug)]
pub struct InferOutput {
    /// The model output.
    pub output: Tensor,
    /// Admission → batch-dispatch wait.
    pub queue_ms: f64,
    /// Admission → completion latency.
    pub total_ms: f64,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
}

/// How a completed job hands its result back: the blocking [`Pending`]
/// channel, or a callback invoked on the scheduler worker (the event
/// reactor's path — serialization happens on the worker, never on the
/// reactor thread).
pub(crate) enum Done {
    Channel(mpsc::Sender<Result<InferOutput, ServeError>>),
    Callback(Box<dyn FnOnce(Result<InferOutput, ServeError>) + Send + Sync>),
}

impl Done {
    fn complete(self, result: Result<InferOutput, ServeError>) {
        match self {
            // The submitter may have gone away (disconnected client) —
            // dropping the result is correct then.
            Done::Channel(tx) => {
                let _ = tx.send(result);
            }
            Done::Callback(f) => f(result),
        }
    }
}

struct Job {
    entry: Arc<ModelEntry>,
    precision: Precision,
    input: Tensor,
    enqueued: Instant,
    done: Done,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    cfg: SchedulerConfig,
    state: Mutex<QueueState>,
    work_cv: Condvar,
    metrics: Arc<Metrics>,
}

/// Unwraps a mutex even if a panicking worker poisoned it: one failed
/// batch must not take the whole service down.
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A pending inference: resolve with [`Pending::wait`].
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<Result<InferOutput, ServeError>>,
}

impl Pending {
    /// Blocks until the batch containing this request completes.
    ///
    /// # Errors
    ///
    /// Whatever the service decided ([`ServeError::Internal`] if the
    /// worker vanished).
    pub fn wait(self) -> Result<InferOutput, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("worker dropped the request".into())))
    }
}

/// The running scheduler (share via `Arc`; [`Scheduler::shutdown`]
/// drains and joins).
pub struct Scheduler {
    shared: Arc<Shared>,
    registry: Arc<ModelRegistry>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns the worker threads and returns the running scheduler.
    pub fn start(registry: Arc<ModelRegistry>, cfg: SchedulerConfig) -> Scheduler {
        let cfg = SchedulerConfig {
            workers: cfg.workers.max(1),
            max_batch: cfg.max_batch.max(1),
            queue_cap: cfg.queue_cap.max(1),
            ..cfg
        };
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            work_cv: Condvar::new(),
            metrics: Arc::new(Metrics::new()),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            registry,
            workers: Mutex::new(workers),
        }
    }

    /// The model registry this scheduler serves.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Service metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The effective configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.shared.cfg
    }

    /// The number of requests queued *right now* (briefly locks the
    /// queue). [`Metrics::queue_depth`] is only the depth at the last
    /// submit or dispatch, which reads stale — typically the size of the
    /// last batch taken — once the queue drains and traffic stops; the
    /// `health` verb reports this live count instead.
    pub fn queue_len(&self) -> usize {
        lock_unpoisoned(&self.shared.state).jobs.len()
    }

    /// Submits a request (non-blocking). The returned [`Pending`]
    /// resolves when the request's batch completes.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::BadRequest`] (shape,
    /// or `quant` precision without an attached quantized pipeline),
    /// [`ServeError::Overloaded`] (queue full), or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(
        &self,
        model: &str,
        input: Tensor,
        precision: Precision,
    ) -> Result<Pending, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.submit_done(model, input, precision, Done::Channel(tx))?;
        Ok(Pending { rx })
    }

    /// [`Scheduler::submit`] with an explicit completion carrier — the
    /// reactor passes [`Done::Callback`] so results are serialized and
    /// flushed from the worker thread that produced them.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::submit`]. On error, `done` is dropped unused
    /// (the caller still holds the failure).
    pub(crate) fn submit_done(
        &self,
        model: &str,
        input: Tensor,
        precision: Precision,
        done: Done,
    ) -> Result<(), ServeError> {
        let entry = self
            .registry
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel(model.into()))?;
        entry.validate_input(input.shape())?;
        if precision == Precision::Quant && !entry.has_quant() {
            return Err(ServeError::BadRequest(format!(
                "model `{model}` has no quantized pipeline (load a ringcnn-qmodel/v1 file)"
            )));
        }
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            if st.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            if st.jobs.len() >= self.shared.cfg.queue_cap {
                self.shared.metrics.record_rejected();
                return Err(ServeError::Overloaded {
                    depth: st.jobs.len(),
                    cap: self.shared.cfg.queue_cap,
                });
            }
            st.jobs.push_back(Job {
                entry,
                precision,
                input,
                enqueued: Instant::now(),
                done,
            });
            self.shared.metrics.record_submit(st.jobs.len());
        }
        self.shared.work_cv.notify_one();
        Ok(())
    }

    /// Blocking submit-and-wait convenience.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::submit`] and [`Pending::wait`].
    pub fn infer(
        &self,
        model: &str,
        input: Tensor,
        precision: Precision,
    ) -> Result<InferOutput, ServeError> {
        self.submit(model, input, precision)?.wait()
    }

    /// Stops admitting work, drains every already-queued request, and
    /// joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            st.shutting_down = true;
        }
        self.shared.work_cv.notify_all();
        let handles: Vec<_> = lock_unpoisoned(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// A flush-ready batch: jobs of one model, removed from the queue.
fn try_take_batch(st: &mut QueueState, cfg: &SchedulerConfig) -> Option<Vec<Job>> {
    if st.jobs.is_empty() {
        return None;
    }
    // Scan model groups in arrival order of their oldest job (the queue
    // is FIFO, so first occurrence = oldest). Shutdown flushes
    // unconditionally — that is the drain.
    let mut ready: Option<*const ModelEntry> = None;
    if st.shutting_down {
        ready = Some(Arc::as_ptr(&st.jobs[0].entry));
    } else {
        let now = Instant::now();
        let mut seen: Vec<(*const ModelEntry, usize)> = Vec::new();
        for job in &st.jobs {
            let key = Arc::as_ptr(&job.entry);
            match seen.iter_mut().find(|(k, _)| *k == key) {
                Some((_, count)) => {
                    *count += 1;
                    if *count >= cfg.max_batch {
                        ready = Some(key);
                        break;
                    }
                }
                None => {
                    // First occurrence = the group's oldest job.
                    if now.duration_since(job.enqueued) >= cfg.max_wait || cfg.max_batch == 1 {
                        ready = Some(key);
                        break;
                    }
                    seen.push((key, 1));
                }
            }
        }
    }
    let key = ready?;
    let mut batch = Vec::new();
    let mut rest = VecDeque::with_capacity(st.jobs.len());
    for job in st.jobs.drain(..) {
        if batch.len() < cfg.max_batch && Arc::as_ptr(&job.entry) == key {
            batch.push(job);
        } else {
            rest.push_back(job);
        }
    }
    st.jobs = rest;
    Some(batch)
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut st = lock_unpoisoned(&shared.state);
            loop {
                if let Some(batch) = try_take_batch(&mut st, &shared.cfg) {
                    shared.metrics.record_batch(batch.len(), st.jobs.len());
                    break batch;
                }
                if st.jobs.is_empty() {
                    if st.shutting_down {
                        return;
                    }
                    st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                } else {
                    // Sleep until the oldest request's flush deadline;
                    // new submissions notify and re-run the scan.
                    let deadline = st.jobs[0].enqueued + shared.cfg.max_wait;
                    let wait = deadline
                        .saturating_duration_since(Instant::now())
                        .max(Duration::from_micros(50));
                    st = shared
                        .work_cv
                        .wait_timeout(st, wait)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        };
        execute_batch(shared, batch);
        // A batch may have left flush-ready work behind (group larger
        // than max_batch, or other models): let a sibling pick it up
        // without waiting for the next submission.
        shared.work_cv.notify_one();
    }
}

fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let size = batch.len();
    let dispatched = Instant::now();
    // One task per frame across the shared pool — the plan-reuse
    // execution shape of `BatchRunner::run_batch`: every frame reads the
    // same prepared model, so cached transform plans are built zero
    // times on this path.
    // A batch may mix precisions of one model: each job runs its own
    // pipeline (both are shared immutable state), and admission already
    // guaranteed the quantized pipeline exists where requested.
    let outputs: Vec<std::thread::Result<Result<Tensor, ServeError>>> = batch
        .par_iter()
        .map(|job| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                job.entry.infer_precision(&job.input, job.precision)
            }))
        })
        .collect();
    for (job, out) in batch.into_iter().zip(outputs) {
        let queue_ms = dispatched.duration_since(job.enqueued).as_secs_f64() * 1e3;
        let total_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        let result = match out {
            Ok(Ok(output)) => {
                shared
                    .metrics
                    .record_completion(job.entry.name(), queue_ms, total_ms);
                Ok(InferOutput {
                    output,
                    queue_ms,
                    total_ms,
                    batch_size: size,
                })
            }
            Ok(Err(e)) => {
                shared.metrics.record_failure();
                Err(e)
            }
            Err(_) => {
                shared.metrics.record_failure();
                Err(ServeError::Internal(format!(
                    "inference panicked for model `{}`",
                    job.entry.name()
                )))
            }
        };
        job.done.complete(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringcnn_nn::prelude::*;
    use ringcnn_nn::serialize::{AlgebraSpec, ModelSpec};

    fn registry_with(names: &[&str]) -> Arc<ModelRegistry> {
        let alg = Algebra::real();
        let spec = ModelSpec::Vdsr {
            depth: 2,
            width: 8,
            channels_io: 1,
        };
        let mut reg = ModelRegistry::new();
        for (i, n) in names.iter().enumerate() {
            reg.register(n, spec, AlgebraSpec::of(&alg), spec.build(&alg, i as u64))
                .unwrap();
        }
        Arc::new(reg)
    }

    #[test]
    fn unknown_model_and_bad_shape_are_rejected_up_front() {
        let sched = Scheduler::start(registry_with(&["m"]), SchedulerConfig::default());
        let x = Tensor::zeros(Shape4::new(1, 1, 4, 4));
        assert_eq!(
            sched
                .infer("nope", x.clone(), Precision::Fp64)
                .unwrap_err()
                .code(),
            "unknown_model"
        );
        let bad = Tensor::zeros(Shape4::new(1, 3, 4, 4));
        assert_eq!(
            sched.infer("m", bad, Precision::Fp64).unwrap_err().code(),
            "bad_request"
        );
        assert_eq!(
            sched
                .infer("m", x.clone(), Precision::Fp64)
                .unwrap()
                .output
                .shape(),
            x.shape()
        );
        sched.shutdown();
        assert_eq!(
            sched.infer("m", x, Precision::Fp64).unwrap_err().code(),
            "shutting_down"
        );
    }

    #[test]
    fn queue_len_is_live_where_the_metrics_atomic_reads_stale() {
        // The `queue_depth` atomic only remembers the depth at the last
        // submit/dispatch: force it stale and check `health`'s source of
        // truth disagrees correctly.
        let sched = Scheduler::start(registry_with(&["m"]), SchedulerConfig::default());
        sched.metrics().record_submit(7); // stale observation, queue empty
        assert_eq!(sched.metrics().queue_depth(), 7);
        assert_eq!(sched.queue_len(), 0, "live count must ignore the atomic");
        sched.shutdown();
    }

    #[test]
    fn batch_takes_only_one_model_group_in_fifo_order() {
        let reg = registry_with(&["a", "b"]);
        let (tx, _rx) = mpsc::channel();
        let mk = |name: &str| Job {
            entry: reg.get(name).unwrap(),
            precision: Precision::Fp64,
            input: Tensor::zeros(Shape4::new(1, 1, 4, 4)),
            enqueued: Instant::now() - Duration::from_secs(1), // already past max_wait
            done: Done::Channel(tx.clone()),
        };
        let mut st = QueueState {
            jobs: VecDeque::from([mk("a"), mk("b"), mk("a"), mk("a"), mk("b")]),
            shutting_down: false,
        };
        let cfg = SchedulerConfig {
            max_batch: 2,
            ..SchedulerConfig::default()
        };
        let batch = try_take_batch(&mut st, &cfg).unwrap();
        assert_eq!(batch.len(), 2, "capped at max_batch");
        assert!(batch.iter().all(|j| j.entry.name() == "a"));
        // Remaining queue preserves order: b, a, b.
        let names: Vec<_> = st.jobs.iter().map(|j| j.entry.name().to_string()).collect();
        assert_eq!(names, ["b", "a", "b"]);
    }

    #[test]
    fn not_ready_group_is_not_taken() {
        let reg = registry_with(&["a"]);
        let (tx, _rx) = mpsc::channel();
        let mut st = QueueState {
            jobs: VecDeque::from([Job {
                entry: reg.get("a").unwrap(),
                precision: Precision::Fp64,
                input: Tensor::zeros(Shape4::new(1, 1, 4, 4)),
                enqueued: Instant::now(),
                done: Done::Channel(tx),
            }]),
            shutting_down: false,
        };
        let cfg = SchedulerConfig {
            max_batch: 4,
            max_wait: Duration::from_secs(10),
            ..SchedulerConfig::default()
        };
        assert!(
            try_take_batch(&mut st, &cfg).is_none(),
            "must wait for the batch to fill"
        );
        // …until shutdown, which flushes unconditionally.
        st.shutting_down = true;
        assert_eq!(try_take_batch(&mut st, &cfg).unwrap().len(), 1);
    }
}
