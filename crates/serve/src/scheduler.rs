//! The dynamic micro-batching scheduler: bounded per-model queues,
//! weighted fair batch selection, deadline-aware admission, and worker
//! threads that fan each batch out across the shared thread pool.
//!
//! # Batching policy
//!
//! Requests join the queue of their model. A model group is
//! *flush-ready* once [`SchedulerConfig::max_batch`] requests are
//! waiting or its oldest request has waited
//! [`SchedulerConfig::max_wait`]. Until some group is ready, workers
//! sleep on the queue's condition variable with a deadline at the
//! earliest flush time — so a lone request never waits longer than
//! `max_wait`, and a burst coalesces into one batch that amortizes
//! per-dispatch overhead and keeps every pool thread busy
//! (`forward_infer` over a prepared model, exactly the
//! `BatchRunner::run_batch` execution shape).
//!
//! # Fair scheduling ([`SchedPolicy`])
//!
//! Among flush-ready groups, [`SchedPolicy::WeightedFair`] (the
//! default) picks the group with the smallest *virtual time*: each
//! dispatch advances the group's clock by `batch_len / weight`, so over
//! time every model receives service proportional to its weight
//! ([`Scheduler::set_model_weight`]) and a single hot model cannot
//! starve a cold one — the cold model's clock lags, so its next ready
//! batch preempts the hot queue. A group that was idle is capped to the
//! global virtual clock when it becomes busy again (no banking
//! "credit" while idle). [`SchedPolicy::FifoScan`] preserves the
//! pre-fleet behavior — ready groups dispatch in arrival order of their
//! oldest request — and exists as the measurable single-queue baseline.
//!
//! # Admission control
//!
//! The queue is bounded globally ([`SchedulerConfig::queue_cap`]) and
//! optionally per model ([`SchedulerConfig::model_queue_cap`]): when
//! either bound is hit, [`Scheduler::submit`] returns
//! [`ServeError::Overloaded`] *immediately* instead of queueing
//! unbounded latency. A request may carry a `deadline_ms` budget
//! ([`Scheduler::submit_with`]): admission consults the model's
//! total-latency EWMA and rejects on arrival
//! ([`ServeError::Deadline`]) when the predicted completion time
//! already exceeds the budget — queueing doomed work would only steal
//! service from requests that can still make their deadlines. On
//! [`Scheduler::shutdown`] new work is refused
//! ([`ServeError::ShuttingDown`]) and every already-admitted request is
//! drained before the workers exit.

use crate::error::ServeError;
use crate::registry::{ModelEntry, ModelRegistry, Precision};
use crate::stats::{Metrics, ModelStats, StatsSnapshot, HIST_BUCKETS};
use rayon::prelude::*;
use ringcnn_tensor::prelude::*;
use ringcnn_trace::clock;
use ringcnn_trace::span::{self, SpanCtx};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Which flush-ready model group a worker dispatches first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Weighted fair queueing over per-model virtual time (default):
    /// service is shared proportionally to model weights, so one hot
    /// model cannot starve the rest.
    #[default]
    WeightedFair,
    /// The pre-fleet single-queue behavior: ready groups dispatch in
    /// arrival order of their oldest request. Kept as the measurable
    /// baseline that `serve_fleet_2model_fair` benches against.
    FifoScan,
}

impl SchedPolicy {
    /// Stable CLI/wire string.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::WeightedFair => "fair",
            SchedPolicy::FifoScan => "fifo",
        }
    }

    /// Parses the CLI string.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] naming the unknown value.
    pub fn parse(s: &str) -> Result<SchedPolicy, ServeError> {
        match s {
            "fair" => Ok(SchedPolicy::WeightedFair),
            "fifo" => Ok(SchedPolicy::FifoScan),
            other => Err(ServeError::BadRequest(format!(
                "unknown policy `{other}` (want \"fair\" or \"fifo\")"
            ))),
        }
    }
}

/// Scheduler knobs.
///
/// # Example
///
/// ```
/// use ringcnn_serve::prelude::*;
///
/// // Bound each model to 64 queued requests on top of the global cap,
/// // keeping the default weighted-fair policy.
/// let cfg = SchedulerConfig {
///     workers: 2,
///     model_queue_cap: 64,
///     ..SchedulerConfig::default()
/// };
/// assert_eq!(cfg.policy, SchedPolicy::WeightedFair);
/// assert_eq!(cfg.queue_cap, 256);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Worker threads forming and dispatching batches. Each dispatch
    /// itself parallelizes across the shared rayon pool, so a small
    /// worker count (2) already keeps the pool saturated; more workers
    /// mainly help when many distinct models are hot at once.
    pub workers: usize,
    /// Flush a model group once this many requests are waiting.
    pub max_batch: usize,
    /// Flush a model group once its oldest request has waited this long.
    pub max_wait: Duration,
    /// Bounded global queue capacity (admission control).
    pub queue_cap: usize,
    /// Per-model queue bound on top of `queue_cap`; `0` disables it
    /// (the default — a single-model deployment keeps the old
    /// semantics). With it set, one model's backlog saturates its own
    /// bound and starts rejecting while other models keep admitting.
    pub model_queue_cap: usize,
    /// Fair-scheduling weight given to models that were never assigned
    /// one explicitly via [`Scheduler::set_model_weight`]. Clamped ≥ 1.
    pub default_weight: u32,
    /// How flush-ready groups are ordered for dispatch.
    pub policy: SchedPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_cap: 256,
            model_queue_cap: 0,
            default_weight: 1,
            policy: SchedPolicy::WeightedFair,
        }
    }
}

/// A completed inference with its service-side timing.
#[derive(Debug)]
pub struct InferOutput {
    /// The model output.
    pub output: Tensor,
    /// Admission → batch-dispatch wait.
    pub queue_ms: f64,
    /// Admission → completion latency.
    pub total_ms: f64,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
}

/// How a completed job hands its result back: the blocking [`Pending`]
/// channel, or a callback invoked on the scheduler worker (the event
/// reactor's path — serialization happens on the worker, never on the
/// reactor thread).
pub(crate) enum Done {
    Channel(mpsc::Sender<Result<InferOutput, ServeError>>),
    Callback(Box<dyn FnOnce(Result<InferOutput, ServeError>) + Send + Sync>),
}

impl Done {
    fn complete(self, result: Result<InferOutput, ServeError>) {
        match self {
            // The submitter may have gone away (disconnected client) —
            // dropping the result is correct then.
            Done::Channel(tx) => {
                let _ = tx.send(result);
            }
            Done::Callback(f) => f(result),
        }
    }
}

/// Trace attribution riding with a sampled job: the request's root
/// span (to parent the scheduler-side stage spans onto) plus the
/// admission timestamp on the trace clock, stamped at queue push so
/// the `queue_wait` span closes exactly at batch dispatch.
#[derive(Clone, Copy)]
struct JobTrace {
    ctx: SpanCtx,
    enqueued_us: u64,
}

struct Job {
    /// The entry `Arc` captured at admission: a concurrent hot-reload
    /// swap does not retarget queued work, so every response is
    /// bit-exact against the version that admitted it.
    entry: Arc<ModelEntry>,
    precision: Precision,
    input: Tensor,
    enqueued: Instant,
    /// Global arrival number — FIFO order within a group, tie-break
    /// across groups.
    seq: u64,
    /// `Some` iff the request was elected by the trace sampler.
    trace: Option<JobTrace>,
    done: Done,
}

/// One model's queue plus its fair-queueing state.
struct ModelQueue {
    jobs: VecDeque<Job>,
    weight: u32,
    /// Virtual time already served to this model (jobs / weight).
    vtime: f64,
}

struct QueueState {
    /// Per-model queues keyed by model name. Entries persist when a
    /// queue drains so weights and virtual clocks survive idleness.
    groups: HashMap<String, ModelQueue>,
    /// Total queued jobs across all groups (the global bound).
    total: usize,
    /// Next arrival number.
    next_seq: u64,
    /// max over groups of served virtual time; newly-busy groups are
    /// capped to this so idling never banks credit.
    vclock: f64,
    shutting_down: bool,
}

impl QueueState {
    fn new() -> Self {
        Self {
            groups: HashMap::new(),
            total: 0,
            next_seq: 0,
            vclock: 0.0,
            shutting_down: false,
        }
    }
}

struct Shared {
    cfg: SchedulerConfig,
    state: Mutex<QueueState>,
    work_cv: Condvar,
    metrics: Arc<Metrics>,
}

/// Unwraps a mutex even if a panicking worker poisoned it: one failed
/// batch must not take the whole service down.
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A pending inference: resolve with [`Pending::wait`].
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<Result<InferOutput, ServeError>>,
}

impl Pending {
    /// Blocks until the batch containing this request completes.
    ///
    /// # Errors
    ///
    /// Whatever the service decided ([`ServeError::Internal`] if the
    /// worker vanished).
    pub fn wait(self) -> Result<InferOutput, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("worker dropped the request".into())))
    }
}

/// The running scheduler (share via `Arc`; [`Scheduler::shutdown`]
/// drains and joins).
pub struct Scheduler {
    shared: Arc<Shared>,
    registry: Arc<ModelRegistry>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns the worker threads and returns the running scheduler.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] when a worker thread cannot be spawned
    /// (thread exhaustion); any workers already started are drained
    /// and joined before returning, so nothing is left running.
    pub fn start(
        registry: Arc<ModelRegistry>,
        cfg: SchedulerConfig,
    ) -> Result<Scheduler, ServeError> {
        let cfg = SchedulerConfig {
            workers: cfg.workers.max(1),
            max_batch: cfg.max_batch.max(1),
            queue_cap: cfg.queue_cap.max(1),
            default_weight: cfg.default_weight.max(1),
            ..cfg
        };
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(QueueState::new()),
            work_cv: Condvar::new(),
            metrics: Arc::new(Metrics::new()),
        });
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let worker_shared = shared.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Unwind the partial pool: wake every worker that
                    // did start and let it observe the shutdown flag.
                    {
                        let mut st = lock_unpoisoned(&shared.state);
                        st.shutting_down = true;
                    }
                    shared.work_cv.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(ServeError::Internal(format!(
                        "cannot spawn scheduler worker {i}: {e}"
                    )));
                }
            }
        }
        Ok(Scheduler {
            shared,
            registry,
            workers: Mutex::new(workers),
        })
    }

    /// The model registry this scheduler serves.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Service metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The effective configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.shared.cfg
    }

    /// The number of requests queued *right now* (briefly locks the
    /// queue). [`Metrics::queue_depth`] is only the depth at the last
    /// submit or dispatch, which reads stale — typically the size of the
    /// last batch taken — once the queue drains and traffic stops; the
    /// `health` verb reports this live count instead.
    pub fn queue_len(&self) -> usize {
        lock_unpoisoned(&self.shared.state).total
    }

    /// Sets a model's fair-scheduling weight (clamped ≥ 1): a model
    /// with weight `w` receives `w×` the service share of a weight-1
    /// model under contention. May be called before the model has any
    /// traffic, and takes effect on the next dispatch.
    pub fn set_model_weight(&self, model: &str, weight: u32) {
        let weight = weight.max(1);
        let mut st = lock_unpoisoned(&self.shared.state);
        let vclock = st.vclock;
        st.groups
            .entry(model.to_string())
            .and_modify(|q| q.weight = weight)
            .or_insert_with(|| ModelQueue {
                jobs: VecDeque::new(),
                weight,
                vtime: vclock,
            });
    }

    /// Submits a request (non-blocking). The returned [`Pending`]
    /// resolves when the request's batch completes.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::BadRequest`] (shape,
    /// or `quant` precision without an attached quantized pipeline),
    /// [`ServeError::Overloaded`] (global or per-model queue full), or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(
        &self,
        model: &str,
        input: Tensor,
        precision: Precision,
    ) -> Result<Pending, ServeError> {
        self.submit_with(model, input, precision, None)
    }

    /// [`Scheduler::submit`] with an optional `deadline_ms` budget:
    /// when the model's latency EWMA predicts the budget is already
    /// blown at arrival, the request is rejected with
    /// [`ServeError::Deadline`] instead of queueing doomed work. A
    /// model with no completions yet always admits (no evidence to
    /// reject on).
    ///
    /// # Errors
    ///
    /// See [`Scheduler::submit`], plus [`ServeError::Deadline`] and
    /// [`ServeError::BadRequest`] for a non-finite or negative budget.
    pub fn submit_with(
        &self,
        model: &str,
        input: Tensor,
        precision: Precision,
        deadline_ms: Option<f64>,
    ) -> Result<Pending, ServeError> {
        let (tx, rx) = mpsc::channel();
        // Ambient propagation: an in-process caller holding an open span
        // (tests, embedded use) gets the scheduler stages parented onto
        // it; the reactor path passes its root explicitly instead.
        let trace = span::current();
        self.submit_done(
            model,
            input,
            precision,
            deadline_ms,
            trace,
            Done::Channel(tx),
        )?;
        Ok(Pending { rx })
    }

    /// [`Scheduler::submit_with`] with an explicit completion carrier —
    /// the reactor passes [`Done::Callback`] so results are serialized
    /// and flushed from the worker thread that produced them — and an
    /// optional trace context: when the request was elected by the
    /// sampler, the scheduler records `queue_wait`, `batch`, and
    /// `kernel` stage spans parented onto `trace`.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::submit_with`]. On error, `done` is dropped
    /// unused (the caller still holds the failure).
    pub(crate) fn submit_done(
        &self,
        model: &str,
        input: Tensor,
        precision: Precision,
        deadline_ms: Option<f64>,
        trace: Option<SpanCtx>,
        done: Done,
    ) -> Result<(), ServeError> {
        let entry = self
            .registry
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel(model.into()))?;
        entry.validate_input(input.shape())?;
        if precision == Precision::Quant && !entry.has_quant() {
            return Err(ServeError::BadRequest(format!(
                "model `{model}` has no quantized pipeline (load a ringcnn-qmodel/v1 file)"
            )));
        }
        if let Some(budget) = deadline_ms {
            if !budget.is_finite() || budget < 0.0 {
                return Err(ServeError::BadRequest(format!(
                    "deadline_ms must be a non-negative finite number, got {budget}"
                )));
            }
        }
        // Read the EWMA before taking the queue lock (the metrics map
        // has its own lock; never nest the two).
        let ewma = match deadline_ms {
            Some(_) => self.shared.metrics.ewma_ms(model),
            None => None,
        };
        let cfg = &self.shared.cfg;
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            if st.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            if st.total >= cfg.queue_cap {
                let depth = st.total;
                drop(st);
                self.shared.metrics.record_rejected(Some(model));
                return Err(ServeError::Overloaded {
                    depth,
                    cap: cfg.queue_cap,
                });
            }
            let group_len = st.groups.get(model).map_or(0, |q| q.jobs.len());
            if cfg.model_queue_cap > 0 && group_len >= cfg.model_queue_cap {
                drop(st);
                self.shared.metrics.record_rejected(Some(model));
                return Err(ServeError::Overloaded {
                    depth: group_len,
                    cap: cfg.model_queue_cap,
                });
            }
            if let (Some(budget), Some(ewma)) = (deadline_ms, ewma) {
                // Estimated completion: one EWMA of service time per
                // full batch already queued ahead, plus this request's
                // own. Coarse but monotone in backlog, which is what
                // reject-on-arrival needs.
                let batches_ahead = (group_len / cfg.max_batch) as f64;
                let estimate = ewma * (1.0 + batches_ahead);
                if estimate > budget {
                    drop(st);
                    self.shared.metrics.record_deadline_rejected(model);
                    return Err(ServeError::Deadline {
                        budget_ms: budget.round() as u64,
                        estimate_ms: estimate.round() as u64,
                    });
                }
            }
            let seq = st.next_seq;
            st.next_seq += 1;
            let vclock = st.vclock;
            let default_weight = cfg.default_weight.max(1);
            let q = st
                .groups
                .entry(model.to_string())
                .or_insert_with(|| ModelQueue {
                    jobs: VecDeque::new(),
                    weight: default_weight,
                    vtime: vclock,
                });
            if q.jobs.is_empty() && q.vtime < vclock {
                // Re-busy after idling: no banked credit.
                q.vtime = vclock;
            }
            q.jobs.push_back(Job {
                entry,
                precision,
                input,
                enqueued: Instant::now(),
                seq,
                trace: trace.map(|ctx| JobTrace {
                    ctx,
                    enqueued_us: clock::now_us(),
                }),
                done,
            });
            st.total += 1;
            let depth = st.total;
            drop(st);
            self.shared.metrics.record_submit(depth);
        }
        self.shared.work_cv.notify_one();
        Ok(())
    }

    /// Blocking submit-and-wait convenience.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::submit`] and [`Pending::wait`].
    pub fn infer(
        &self,
        model: &str,
        input: Tensor,
        precision: Precision,
    ) -> Result<InferOutput, ServeError> {
        self.submit(model, input, precision)?.wait()
    }

    /// The full `stats` v2 snapshot: [`Metrics::snapshot`] enriched
    /// with what only the scheduler knows — live global and per-model
    /// queue depths, fair weights, registry versions, and reload
    /// counters. Registered models with no traffic yet are included
    /// with zeroed counters so the fleet inventory is always complete.
    ///
    /// Lock discipline: every source is copied out under its own brief
    /// lock; assembly and (caller-side) serialization run lock-free.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut snap = self.shared.metrics.snapshot();
        snap.reload_passes = self.registry.reload_passes();
        snap.models_reloaded = self.registry.models_reloaded();
        let (live, total): (HashMap<String, (usize, u32)>, usize) = {
            let st = lock_unpoisoned(&self.shared.state);
            (
                st.groups
                    .iter()
                    .map(|(k, q)| (k.clone(), (q.jobs.len(), q.weight)))
                    .collect(),
                st.total,
            )
        };
        snap.queue_depth = total;
        let entries = self.registry.entries();
        for e in &entries {
            if snap.model(e.name()).is_none() {
                snap.per_model.push(ModelStats {
                    name: e.name().to_string(),
                    completed: 0,
                    rejected: 0,
                    deadline_rejected: 0,
                    qps: 0.0,
                    ewma_ms: 0.0,
                    queue_depth: 0,
                    weight: 0,
                    version: 0,
                    histogram: vec![0; HIST_BUCKETS],
                });
            }
        }
        let default_weight = u64::from(self.shared.cfg.default_weight.max(1));
        for m in &mut snap.per_model {
            match live.get(&m.name) {
                Some(&(depth, weight)) => {
                    m.queue_depth = depth;
                    m.weight = u64::from(weight);
                }
                None => m.weight = default_weight,
            }
            if let Some(e) = entries.iter().find(|e| e.name() == m.name) {
                m.version = e.version();
            }
        }
        snap.per_model.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }

    /// Stops admitting work, drains every already-queued request, and
    /// joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = lock_unpoisoned(&self.shared.state);
            st.shutting_down = true;
        }
        self.shared.work_cv.notify_all();
        let handles: Vec<_> = lock_unpoisoned(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// A flush-ready batch: jobs of one model, removed from that model's
/// queue. Selection among ready groups follows `cfg.policy`; shutdown
/// makes every non-empty group ready — that is the drain.
fn try_take_batch(st: &mut QueueState, cfg: &SchedulerConfig) -> Option<Vec<Job>> {
    if st.total == 0 {
        return None;
    }
    let now = Instant::now();
    // (vtime, oldest seq) of the best ready group so far; FifoScan
    // zeroes the vtime component so arrival order alone decides.
    let mut best: Option<(f64, u64, String)> = None;
    for (name, q) in &st.groups {
        let Some(oldest) = q.jobs.front() else {
            continue;
        };
        let ready = st.shutting_down
            || q.jobs.len() >= cfg.max_batch
            || cfg.max_batch == 1
            || now.duration_since(oldest.enqueued) >= cfg.max_wait;
        if !ready {
            continue;
        }
        let vkey = match cfg.policy {
            SchedPolicy::WeightedFair => q.vtime,
            SchedPolicy::FifoScan => 0.0,
        };
        let better = match &best {
            None => true,
            Some((bv, bs, _)) => vkey < *bv || (vkey == *bv && oldest.seq < *bs),
        };
        if better {
            best = Some((vkey, oldest.seq, name.clone()));
        }
    }
    let (_, _, name) = best?;
    // The group must exist — `best` was chosen from `st.groups` under
    // the same lock — but `?` keeps the invariant panic-free: a bug
    // here would skip one batch scan, not kill a worker thread.
    let q = st.groups.get_mut(&name)?;
    let take = q.jobs.len().min(cfg.max_batch);
    let batch: Vec<Job> = q.jobs.drain(..take).collect();
    st.total -= take;
    q.vtime += take as f64 / f64::from(q.weight.max(1));
    if q.vtime > st.vclock {
        st.vclock = q.vtime;
    }
    Some(batch)
}

/// The earliest `max_wait` flush deadline across queued work, for the
/// worker's timed condvar wait.
fn next_flush_deadline(st: &QueueState, cfg: &SchedulerConfig) -> Option<Instant> {
    st.groups
        .values()
        .filter_map(|q| q.jobs.front())
        .map(|j| j.enqueued + cfg.max_wait)
        .min()
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut st = lock_unpoisoned(&shared.state);
            loop {
                if let Some(batch) = try_take_batch(&mut st, &shared.cfg) {
                    shared.metrics.record_batch(batch.len(), st.total);
                    break batch;
                }
                if st.total == 0 {
                    if st.shutting_down {
                        return;
                    }
                    st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                } else {
                    // Sleep until the earliest flush deadline; new
                    // submissions notify and re-run the scan. `total >
                    // 0` implies a queued job, so the fallback arm is
                    // unreachable — but if that invariant ever broke,
                    // a spurious `max_wait` sleep beats a dead worker.
                    let deadline = next_flush_deadline(&st, &shared.cfg)
                        .unwrap_or_else(|| Instant::now() + shared.cfg.max_wait);
                    let wait = deadline
                        .saturating_duration_since(Instant::now())
                        .max(Duration::from_micros(50));
                    st = shared
                        .work_cv
                        .wait_timeout(st, wait)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        };
        execute_batch(shared, batch);
        // A batch may have left flush-ready work behind (group larger
        // than max_batch, or other models): let a sibling pick it up
        // without waiting for the next submission.
        shared.work_cv.notify_one();
    }
}

fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let size = batch.len();
    let dispatched = Instant::now();
    let dispatch_us = clock::now_us();
    // Close every sampled job's queue-wait interval at the dispatch
    // stamp shared by the whole batch (one manual record per job; the
    // rings absorb these wait-free).
    for job in &batch {
        if let Some(t) = &job.trace {
            span::record_manual(
                t.ctx.trace,
                t.ctx.span,
                "queue_wait",
                t.enqueued_us,
                dispatch_us,
            );
        }
    }
    // One task per frame across the shared pool — the plan-reuse
    // execution shape of `BatchRunner::run_batch`: every frame reads the
    // same prepared model, so cached transform plans are built zero
    // times on this path.
    // A batch may mix precisions of one model: each job runs its own
    // pipeline (both are shared immutable state), and admission already
    // guaranteed the quantized pipeline exists where requested.
    let outputs: Vec<std::thread::Result<Result<Tensor, ServeError>>> = batch
        .par_iter()
        .map(|job| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // `batch` = dispatch → this task actually starting on a
                // pool thread; `kernel` = the inference itself, with the
                // process-wide GEMM counter delta over its interval as
                // attribution args (exact per-request only when one
                // request runs at a time — see `gemm::profile`).
                let span = job.trace.as_ref().map(|t| {
                    span::record_manual(
                        t.ctx.trace,
                        t.ctx.span,
                        "batch",
                        dispatch_us,
                        clock::now_us(),
                    );
                    span::span_in(t.ctx, "kernel")
                });
                let before = span
                    .as_ref()
                    .map(|_| ringcnn_tensor::gemm::profile::snapshot());
                let out = job.entry.infer_precision(&job.input, job.precision);
                if let (Some(sp), Some(before)) = (&span, &before) {
                    let d = ringcnn_tensor::gemm::profile::snapshot().delta_since(before);
                    sp.set_args(d.tiles, d.panel_packs);
                }
                out
            }))
        })
        .collect();
    for (job, out) in batch.into_iter().zip(outputs) {
        let queue_ms = dispatched.duration_since(job.enqueued).as_secs_f64() * 1e3;
        let total_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        let result = match out {
            Ok(Ok(output)) => {
                shared
                    .metrics
                    .record_completion(job.entry.name(), queue_ms, total_ms);
                Ok(InferOutput {
                    output,
                    queue_ms,
                    total_ms,
                    batch_size: size,
                })
            }
            Ok(Err(e)) => {
                shared.metrics.record_failure();
                Err(e)
            }
            Err(_) => {
                shared.metrics.record_failure();
                Err(ServeError::Internal(format!(
                    "inference panicked for model `{}`",
                    job.entry.name()
                )))
            }
        };
        job.done.complete(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringcnn_nn::prelude::*;
    use ringcnn_nn::serialize::{AlgebraSpec, ModelSpec};

    fn registry_with(names: &[&str]) -> Arc<ModelRegistry> {
        let alg = Algebra::real();
        let spec = ModelSpec::Vdsr {
            depth: 2,
            width: 8,
            channels_io: 1,
        };
        let reg = ModelRegistry::new();
        for (i, n) in names.iter().enumerate() {
            reg.register(n, spec, AlgebraSpec::of(&alg), spec.build(&alg, i as u64))
                .unwrap();
        }
        Arc::new(reg)
    }

    /// Pushes a ready (already past `max_wait`) job the way `submit_done`
    /// would, without a live scheduler.
    fn push_ready(st: &mut QueueState, reg: &ModelRegistry, name: &str, weight: u32) {
        let (tx, _rx) = mpsc::channel();
        std::mem::forget(_rx); // keep the channel alive for the test
        let seq = st.next_seq;
        st.next_seq += 1;
        let vclock = st.vclock;
        let q = st
            .groups
            .entry(name.to_string())
            .or_insert_with(|| ModelQueue {
                jobs: VecDeque::new(),
                weight,
                vtime: vclock,
            });
        q.jobs.push_back(Job {
            entry: reg.get(name).unwrap(),
            precision: Precision::Fp64,
            input: Tensor::zeros(Shape4::new(1, 1, 4, 4)),
            enqueued: Instant::now() - Duration::from_secs(1),
            seq,
            trace: None,
            done: Done::Channel(tx),
        });
        st.total += 1;
    }

    #[test]
    fn unknown_model_and_bad_shape_are_rejected_up_front() {
        let sched = Scheduler::start(registry_with(&["m"]), SchedulerConfig::default())
            .expect("scheduler starts");
        let x = Tensor::zeros(Shape4::new(1, 1, 4, 4));
        assert_eq!(
            sched
                .infer("nope", x.clone(), Precision::Fp64)
                .unwrap_err()
                .code(),
            "unknown_model"
        );
        let bad = Tensor::zeros(Shape4::new(1, 3, 4, 4));
        assert_eq!(
            sched.infer("m", bad, Precision::Fp64).unwrap_err().code(),
            "bad_request"
        );
        assert_eq!(
            sched
                .infer("m", x.clone(), Precision::Fp64)
                .unwrap()
                .output
                .shape(),
            x.shape()
        );
        sched.shutdown();
        assert_eq!(
            sched.infer("m", x, Precision::Fp64).unwrap_err().code(),
            "shutting_down"
        );
    }

    #[test]
    fn queue_len_is_live_where_the_metrics_atomic_reads_stale() {
        // The `queue_depth` atomic only remembers the depth at the last
        // submit/dispatch: force it stale and check `health`'s source of
        // truth disagrees correctly.
        let sched = Scheduler::start(registry_with(&["m"]), SchedulerConfig::default())
            .expect("scheduler starts");
        sched.metrics().record_submit(7); // stale observation, queue empty
        assert_eq!(sched.metrics().queue_depth(), 7);
        assert_eq!(sched.queue_len(), 0, "live count must ignore the atomic");
        sched.shutdown();
    }

    #[test]
    fn fifo_scan_takes_the_oldest_ready_group_capped_at_max_batch() {
        let reg = registry_with(&["a", "b"]);
        let mut st = QueueState::new();
        for name in ["a", "b", "a", "a", "b"] {
            push_ready(&mut st, &reg, name, 1);
        }
        let cfg = SchedulerConfig {
            max_batch: 2,
            policy: SchedPolicy::FifoScan,
            ..SchedulerConfig::default()
        };
        let batch = try_take_batch(&mut st, &cfg).unwrap();
        assert_eq!(batch.len(), 2, "capped at max_batch");
        assert!(batch.iter().all(|j| j.entry.name() == "a"));
        assert_eq!(batch[0].seq, 0);
        assert_eq!(batch[1].seq, 2, "FIFO within the group");
        // Remaining: one a, two b — the next take is b (older oldest).
        assert_eq!(st.total, 3);
        let batch = try_take_batch(&mut st, &cfg).unwrap();
        assert!(batch.iter().all(|j| j.entry.name() == "b"));
    }

    #[test]
    fn weighted_fair_interleaves_by_weight() {
        // a (weight 2) vs b (weight 1), max_batch 1, everything ready:
        // virtual time advances by 1/2 per a-dispatch and 1/1 per
        // b-dispatch, giving the exact drain order a b a a b a.
        // (Power-of-two weights keep the f64 clock arithmetic exact.)
        let reg = registry_with(&["a", "b"]);
        let mut st = QueueState::new();
        for name in ["a", "a", "a", "a", "b", "b"] {
            push_ready(&mut st, &reg, name, if name == "a" { 2 } else { 1 });
        }
        let cfg = SchedulerConfig {
            max_batch: 1,
            policy: SchedPolicy::WeightedFair,
            ..SchedulerConfig::default()
        };
        let mut order = Vec::new();
        while let Some(batch) = try_take_batch(&mut st, &cfg) {
            assert_eq!(batch.len(), 1);
            order.push(batch[0].entry.name().to_string());
        }
        assert_eq!(order, ["a", "b", "a", "a", "b", "a"]);
        assert_eq!(st.total, 0);
    }

    #[test]
    fn idle_model_does_not_bank_credit() {
        // Serve a for a while, then let b arrive: b's clock is capped to
        // the global vclock (not zero), so it gets its fair share going
        // forward but no retroactive burst.
        let reg = registry_with(&["a", "b"]);
        let mut st = QueueState::new();
        let cfg = SchedulerConfig {
            max_batch: 1,
            ..SchedulerConfig::default()
        };
        for _ in 0..4 {
            push_ready(&mut st, &reg, "a", 1);
        }
        for _ in 0..4 {
            try_take_batch(&mut st, &cfg).unwrap();
        }
        assert_eq!(st.vclock, 4.0);
        // b was registered idle via set_model_weight-style insertion at
        // vclock 0 — simulate the submit path's re-busy cap.
        push_ready(&mut st, &reg, "b", 1);
        let q = st.groups.get_mut("b").unwrap();
        if q.vtime < st.vclock {
            q.vtime = st.vclock;
        }
        push_ready(&mut st, &reg, "a", 1);
        // Tie on vtime (both 4.0): arrival order breaks it — b first.
        let batch = try_take_batch(&mut st, &cfg).unwrap();
        assert_eq!(batch[0].entry.name(), "b");
    }

    #[test]
    fn not_ready_group_is_not_taken() {
        let reg = registry_with(&["a"]);
        let (tx, _rx) = mpsc::channel();
        let mut st = QueueState::new();
        st.groups.insert(
            "a".to_string(),
            ModelQueue {
                jobs: VecDeque::from([Job {
                    entry: reg.get("a").unwrap(),
                    precision: Precision::Fp64,
                    input: Tensor::zeros(Shape4::new(1, 1, 4, 4)),
                    enqueued: Instant::now(),
                    seq: 0,
                    trace: None,
                    done: Done::Channel(tx),
                }]),
                weight: 1,
                vtime: 0.0,
            },
        );
        st.total = 1;
        let cfg = SchedulerConfig {
            max_batch: 4,
            max_wait: Duration::from_secs(10),
            ..SchedulerConfig::default()
        };
        assert!(
            try_take_batch(&mut st, &cfg).is_none(),
            "must wait for the batch to fill"
        );
        // …until shutdown, which flushes unconditionally.
        st.shutting_down = true;
        assert_eq!(try_take_batch(&mut st, &cfg).unwrap().len(), 1);
    }

    #[test]
    fn per_model_cap_rejects_without_touching_other_models() {
        // max_wait long + max_batch large keeps submissions queued, so
        // the per-model bound is observable deterministically.
        let sched = Scheduler::start(
            registry_with(&["hot", "cold"]),
            SchedulerConfig {
                workers: 1,
                max_batch: 64,
                max_wait: Duration::from_secs(30),
                queue_cap: 256,
                model_queue_cap: 2,
                ..SchedulerConfig::default()
            },
        )
        .expect("scheduler starts");
        let x = Tensor::zeros(Shape4::new(1, 1, 4, 4));
        let p1 = sched.submit("hot", x.clone(), Precision::Fp64).unwrap();
        let p2 = sched.submit("hot", x.clone(), Precision::Fp64).unwrap();
        let err = sched.submit("hot", x.clone(), Precision::Fp64).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded { depth: 2, cap: 2 },
            "per-model bound, not the global 256"
        );
        // The other model still admits.
        let p3 = sched.submit("cold", x, Precision::Fp64).unwrap();
        sched.shutdown(); // drains all three
        assert!(p1.wait().is_ok());
        assert!(p2.wait().is_ok());
        assert!(p3.wait().is_ok());
        let snap = sched.stats_snapshot();
        assert_eq!(snap.model("hot").unwrap().rejected, 1);
        assert_eq!(snap.model("cold").unwrap().rejected, 0);
    }

    #[test]
    fn deadline_admission_rejects_on_blown_budget() {
        let sched = Scheduler::start(registry_with(&["m"]), SchedulerConfig::default())
            .expect("scheduler starts");
        let x = Tensor::zeros(Shape4::new(1, 1, 8, 8));
        // No EWMA yet: even a tiny budget admits (no evidence).
        sched
            .submit_with("m", x.clone(), Precision::Fp64, Some(0.001))
            .unwrap()
            .wait()
            .unwrap();
        // Now the EWMA is seeded; an impossible budget rejects on
        // arrival with the dedicated wire code.
        let err = sched
            .submit_with("m", x.clone(), Precision::Fp64, Some(0.0))
            .unwrap_err();
        assert_eq!(err.code(), "deadline", "{err}");
        // A generous budget still admits.
        sched
            .submit_with("m", x.clone(), Precision::Fp64, Some(60_000.0))
            .unwrap()
            .wait()
            .unwrap();
        // Garbage budgets are bad requests, not rejections.
        assert_eq!(
            sched
                .submit_with("m", x.clone(), Precision::Fp64, Some(-1.0))
                .unwrap_err()
                .code(),
            "bad_request"
        );
        assert_eq!(
            sched
                .submit_with("m", x, Precision::Fp64, Some(f64::NAN))
                .unwrap_err()
                .code(),
            "bad_request"
        );
        let snap = sched.stats_snapshot();
        assert_eq!(snap.deadline_rejected, 1);
        assert_eq!(snap.model("m").unwrap().deadline_rejected, 1);
        sched.shutdown();
    }

    #[test]
    fn sampled_jobs_record_scheduler_stage_spans() {
        let sched = Scheduler::start(registry_with(&["m"]), SchedulerConfig::default())
            .expect("scheduler starts");
        let trace = span::mint_forced();
        {
            // Ambient propagation: the open root on the submitting thread
            // is what `submit_with` captures.
            let _root = span::root_span(trace, "request");
            sched
                .infer("m", Tensor::zeros(Shape4::new(1, 1, 4, 4)), Precision::Fp64)
                .unwrap();
        }
        let spans = span::spans_of(trace.id());
        let root = spans.iter().find(|s| s.name == "request").expect("root");
        for stage in ["queue_wait", "batch", "kernel"] {
            let s = spans
                .iter()
                .find(|s| s.name == stage)
                .unwrap_or_else(|| panic!("stage `{stage}` recorded"));
            assert_eq!(s.parent, root.id, "stage `{stage}` parents onto the root");
            assert_eq!(s.trace, trace.id());
        }
        sched.shutdown();
    }

    #[test]
    fn stats_snapshot_includes_idle_models_with_versions_and_weights() {
        let sched = Scheduler::start(
            registry_with(&["served", "idle"]),
            SchedulerConfig::default(),
        )
        .expect("scheduler starts");
        sched.set_model_weight("served", 3);
        let x = Tensor::zeros(Shape4::new(1, 1, 4, 4));
        sched.infer("served", x, Precision::Fp64).unwrap();
        let snap = sched.stats_snapshot();
        let served = snap.model("served").unwrap();
        assert_eq!(served.completed, 1);
        assert_eq!(served.weight, 3);
        assert_eq!(served.version, 1);
        assert_eq!(served.histogram.iter().sum::<u64>(), 1);
        let idle = snap.model("idle").expect("idle model is still inventoried");
        assert_eq!(idle.completed, 0);
        assert_eq!(idle.version, 1);
        assert_eq!(idle.weight, 1, "default weight");
        // Name-sorted output.
        let names: Vec<&str> = snap.per_model.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["idle", "served"]);
        sched.shutdown();
    }
}
