//! OS readiness polling for the serve reactor: a thin, dependency-free
//! wrapper over `epoll(7)` with a built-in wakeup channel.
//!
//! On Linux the implementation issues raw `epoll_create1` /
//! `epoll_ctl` / `epoll_wait` / `eventfd` syscalls through `extern "C"`
//! declarations (std already links libc; no crates.io needed).
//! Everywhere else a portable `std`-only fallback reports every
//! registered token as ready on a short tick — spurious readiness is
//! harmless because the reactor performs only nonblocking I/O and
//! treats readiness strictly as a hint. The fallback is compiled (and
//! unit-tested) on Linux too, so it cannot rot unseen.
//!
//! The wakeup channel ([`Poller::waker`]) is what lets another thread —
//! a scheduler worker finishing an inference, or
//! [`Server::trigger_shutdown`] — interrupt a blocked [`Poller::wait`]
//! without connecting to the server's own socket (the old self-connect
//! poke, which silently failed on `0.0.0.0` binds, is gone).
//!
//! [`Server::trigger_shutdown`]: crate::server::Server::trigger_shutdown

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or peer hung up / errored — a read will tell).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// Registration mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Level-triggered: fires while readiness persists (used for the
    /// listener so an `accept` error under fd exhaustion self-heals on
    /// the next wait instead of stalling forever).
    Level,
    /// Edge-triggered: fires on readiness transitions (used for
    /// connections; the reactor always reads/writes to `WouldBlock`).
    Edge,
}

// The one unsafe island in the crate (raw epoll/eventfd syscalls);
// every site carries a SAFETY rationale checked by ringcnn-lint.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod epoll;
// The portable fallback is always compiled so Linux builds type-check
// it; only non-Linux targets select it.
#[cfg_attr(target_os = "linux", allow(dead_code))]
mod portable;

#[cfg(target_os = "linux")]
pub use epoll::{Poller, Waker};
#[cfg(not(target_os = "linux"))]
pub use portable::{Poller, Waker};

/// Shared contract of both implementations, for the doc and the tests:
///
/// - `Poller::new() -> io::Result<Poller>`
/// - `register(fd, token, mode)` / `deregister(fd)`
/// - `wait(&mut Vec<Event>, Option<Duration>)` blocks until an event,
///   a wakeup, or the timeout; wakeups may surface as an empty event
///   list (the caller re-checks its own state).
/// - `waker()` returns a cheap clonable [`Waker`]; `Waker::wake()` is
///   safe from any thread and coalesces.
#[allow(unused)]
fn _api_contract(p: &Poller, fd: RawFd) -> io::Result<()> {
    p.register(fd, 7, Mode::Edge)?;
    p.deregister(fd)?;
    let mut events = Vec::new();
    p.wait(&mut events, Some(Duration::from_millis(1)))?;
    p.waker().wake();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn readable_event_fires<P>(poller: &P)
    where
        P: PollerApi,
    {
        let (mut a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        poller.register_fd(b.as_raw_fd(), 42, Mode::Edge).unwrap();
        a.write_all(b"x").unwrap();
        a.flush().unwrap();
        let mut events = Vec::new();
        // Bounded retries: the loopback byte can take a moment to land.
        for _ in 0..100 {
            poller
                .wait_events(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 42 && e.readable) {
                poller.deregister_fd(b.as_raw_fd()).unwrap();
                return;
            }
        }
        panic!("no readable event for the written byte");
    }

    fn waker_unblocks_wait<P>(poller: std::sync::Arc<P>)
    where
        P: PollerApi + Send + Sync + 'static,
    {
        let waker = poller.waker_handle();
        let started = std::time::Instant::now();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker();
        });
        let mut events = Vec::new();
        // A 10 s timeout that the waker must cut short.
        poller
            .wait_events(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "wake must interrupt the wait"
        );
        t.join().unwrap();
    }

    /// Object-safe view over both implementations so the same tests run
    /// against each.
    trait PollerApi {
        fn register_fd(&self, fd: RawFd, token: u64, mode: Mode) -> io::Result<()>;
        fn deregister_fd(&self, fd: RawFd) -> io::Result<()>;
        fn wait_events(&self, events: &mut Vec<Event>, t: Option<Duration>) -> io::Result<()>;
        fn waker_handle(&self) -> Box<dyn FnOnce() + Send>;
    }

    macro_rules! impl_api {
        ($ty:ty) => {
            impl PollerApi for $ty {
                fn register_fd(&self, fd: RawFd, token: u64, mode: Mode) -> io::Result<()> {
                    self.register(fd, token, mode)
                }
                fn deregister_fd(&self, fd: RawFd) -> io::Result<()> {
                    self.deregister(fd)
                }
                fn wait_events(
                    &self,
                    events: &mut Vec<Event>,
                    t: Option<Duration>,
                ) -> io::Result<()> {
                    self.wait(events, t)
                }
                fn waker_handle(&self) -> Box<dyn FnOnce() + Send> {
                    let w = self.waker();
                    Box::new(move || w.wake())
                }
            }
        };
    }

    impl_api!(Poller);
    #[cfg(target_os = "linux")]
    impl_api!(portable::Poller);

    #[test]
    fn selected_poller_reports_readable() {
        readable_event_fires(&Poller::new().unwrap());
    }

    #[test]
    fn selected_poller_waker_unblocks() {
        waker_unblocks_wait(std::sync::Arc::new(Poller::new().unwrap()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn portable_fallback_reports_readable() {
        readable_event_fires(&portable::Poller::new().unwrap());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn portable_fallback_waker_unblocks() {
        waker_unblocks_wait(std::sync::Arc::new(portable::Poller::new().unwrap()));
    }
}
