//! The service error type: every way a request can fail, each with a
//! stable wire code so clients can branch without parsing messages.

/// Why the service refused or failed a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The submission queue is full — admission control rejected the
    /// request instead of letting latency grow without bound. Back off
    /// and retry.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// Queue capacity.
        cap: usize,
    },
    /// No registered model has this name.
    UnknownModel(String),
    /// The service is draining and no longer admits work.
    ShuttingDown,
    /// The request carried a `deadline_ms` the scheduler predicts it
    /// cannot meet (per-model latency EWMA × queue pressure), so it was
    /// rejected on arrival instead of queueing doomed work. Lower the
    /// deadline expectation, shed load, or retry later.
    Deadline {
        /// The budget the request asked for, milliseconds (rounded).
        budget_ms: u64,
        /// What the scheduler predicted completion would take.
        estimate_ms: u64,
    },
    /// The request is malformed (bad JSON, wrong shape, …).
    BadRequest(String),
    /// A model file failed to load into the registry.
    Load(String),
    /// An I/O deadline expired (the peer accepted the connection but
    /// stopped responding within the configured read/write timeout).
    /// Distinct from [`ServeError::Io`] so callers can retry a wedged
    /// server without treating it as a dead connection.
    Timeout(String),
    /// Transport failure (connection dropped, bind failed, …).
    Io(String),
    /// The inference itself failed (worker panic) — a server bug, kept
    /// from poisoning the whole service.
    Internal(String),
}

impl ServeError {
    /// Stable machine-readable code used on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::UnknownModel(_) => "unknown_model",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Deadline { .. } => "deadline",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Load(_) => "load_error",
            ServeError::Timeout(_) => "timeout",
            ServeError::Io(_) => "io_error",
            ServeError::Internal(_) => "internal",
        }
    }

    /// Rebuilds the error from a wire `(code, message)` pair (unknown
    /// codes map to [`ServeError::Io`] so old clients survive new codes).
    pub fn from_wire(code: &str, message: &str) -> ServeError {
        match code {
            "overloaded" => ServeError::Overloaded { depth: 0, cap: 0 },
            "unknown_model" => ServeError::UnknownModel(message.into()),
            "shutting_down" => ServeError::ShuttingDown,
            "deadline" => ServeError::Deadline {
                budget_ms: 0,
                estimate_ms: 0,
            },
            "bad_request" => ServeError::BadRequest(message.into()),
            "load_error" => ServeError::Load(message.into()),
            "timeout" => ServeError::Timeout(message.into()),
            "internal" => ServeError::Internal(message.into()),
            _ => ServeError::Io(format!("{code}: {message}")),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth, cap } => {
                write!(f, "queue full ({depth}/{cap} requests)")
            }
            ServeError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Deadline {
                budget_ms,
                estimate_ms,
            } => write!(
                f,
                "deadline {budget_ms}ms cannot be met (estimated {estimate_ms}ms)"
            ),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Load(m) => write!(f, "model load failed: {m}"),
            ServeError::Timeout(m) => write!(f, "i/o timeout: {m}"),
            ServeError::Io(m) => write!(f, "transport error: {m}"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        let errors = [
            ServeError::Overloaded { depth: 4, cap: 4 },
            ServeError::UnknownModel("x".into()),
            ServeError::ShuttingDown,
            ServeError::Deadline {
                budget_ms: 5,
                estimate_ms: 40,
            },
            ServeError::BadRequest("shape".into()),
            ServeError::Load("truncated".into()),
            ServeError::Timeout("no reply in 2s".into()),
            ServeError::Internal("panic".into()),
        ];
        for e in errors {
            let back = ServeError::from_wire(e.code(), &e.to_string());
            assert_eq!(back.code(), e.code());
        }
        assert_eq!(ServeError::from_wire("??", "m").code(), "io_error");
    }
}
