//! Table V: design configurations and layout performance of eRingCNN
//! (model predictions; paper values quoted for comparison).

use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_hw::prelude::*;

fn main() {
    let fl = flags();
    let t = TechParams::tsmc40();
    let configs = [
        (AcceleratorConfig::ecnn(), Some((55.23, 6.94))),
        (AcceleratorConfig::eringcnn_n2(), Some((33.73, 3.76))),
        (AcceleratorConfig::eringcnn_n4(), Some((23.36, 2.22))),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (cfg, paper) in configs {
        let r = layout_report(&cfg, &t);
        let (pa, pp) = paper.unwrap_or((f64::NAN, f64::NAN));
        rows.push(vec![
            r.name.clone(),
            cfg.physical_multipliers().to_string(),
            format!("{:.0}", cfg.weight_mem_kb),
            format!("{:.0}", cfg.clock_hz / 1e6),
            f2(r.area_mm2),
            f2(pa),
            f2(r.power_w),
            f2(pp),
            f2(r.tops_equivalent),
            f2(r.tops_per_watt),
        ]);
        json.push(r);
    }
    print_table(
        "Table V — Design configurations and layout performance",
        &[
            "design",
            "MACs",
            "weight mem (KB)",
            "clock (MHz)",
            "area mm² (model)",
            "area mm² (paper)",
            "power W (model)",
            "power W (paper)",
            "equiv. TOPS",
            "equiv. TOPS/W",
        ],
        &rows,
    );
    println!(
        "DRAM bandwidth for 4K UHD 30 fps: {:.2} GB/s (paper: 1.93 GB/s)",
        dram_bandwidth_gbs(0.7)
    );
    save_json(&fl, "table5_layout", &json);
}
