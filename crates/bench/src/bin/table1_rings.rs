//! Table I: properties of ring algebras — DoF, rank, grank, implemented
//! fast-algorithm multiplications, and 8-bit multiplier-complexity
//! efficiency.

use ringcnn_algebra::complexity::table_one;
use ringcnn_bench::{f2, flags, print_table, save_json};

fn main() {
    let fl = flags();
    let rows: Vec<Vec<String>> = table_one()
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.n.to_string(),
                r.dof.to_string(),
                r.rank_g.to_string(),
                r.grank.to_string(),
                r.m_implemented.to_string(),
                f2(r.weight_efficiency),
                f2(r.mult_efficiency),
                format!("{}x{}", r.wx, r.wg),
                f2(r.multiplier_efficiency),
            ]
        })
        .collect();
    print_table(
        "Table I — Properties of ring algebras (8-bit features/weights)",
        &[
            "ring",
            "n",
            "DoF",
            "rank(G)",
            "grank(M)",
            "m (impl.)",
            "weight eff.",
            "mult eff.",
            "wx×wg",
            "8-bit mult-complexity eff.",
        ],
        &rows,
    );
    println!(
        "Paper shape targets: RI reaches the maximum n× efficiency; RH4/RO4 ≈ 2.6×;\n\
         C ≈ 1.05×; circulant-class rings (m = 5) ≈ 2.05×; H bound m = 8."
    );
    save_json(&fl, "table1_rings", &table_one());
}
