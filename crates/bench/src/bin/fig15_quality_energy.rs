//! Fig. 15: quality-energy comparison with eCNN. Each accelerator forms a
//! curve over compact model configurations; the x-axis is energy per
//! generated pixel, the y-axis PSNR.

use ringcnn::prelude::*;
use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_hw::prelude::*;
use ringcnn_nn::models::ernet::ErNetConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    accelerator: String,
    model: String,
    nj_per_pixel: f64,
    psnr_db: f64,
}

fn main() {
    let fl = flags();
    let scale = fl.scale;
    let t = TechParams::tsmc40();
    let model_cfgs = [
        (
            "B1-w8",
            ErNetConfig {
                b: 1,
                r: 2,
                n_extra: 0,
                width: 8,
            },
        ),
        (
            "B2-w8",
            ErNetConfig {
                b: 2,
                r: 2,
                n_extra: 0,
                width: 8,
            },
        ),
        (
            "B3-w16",
            ErNetConfig {
                b: 3,
                r: 2,
                n_extra: 0,
                width: 16,
            },
        ),
    ];
    let accels = [
        (AcceleratorConfig::ecnn(), Algebra::real()),
        (AcceleratorConfig::eringcnn_n2(), Algebra::ri_fh(2)),
        (AcceleratorConfig::eringcnn_n4(), Algebra::ri_fh(4)),
    ];
    for scenario in [Scenario::Denoise { sigma: 25.0 }, Scenario::Sr4] {
        let mut rows = Vec::new();
        let mut json = Vec::new();
        for (accel, alg) in &accels {
            for (mlabel, mcfg) in model_cfgs {
                let body = match scenario {
                    Scenario::Denoise { .. } => {
                        ringcnn_nn::models::ernet::dn_ernet_pu(alg, mcfg, 1, 91)
                    }
                    Scenario::Sr4 => ringcnn::scenarios::with_bicubic_skip(
                        ringcnn_nn::models::ernet::sr4_ernet(alg, mcfg, 1, 91),
                        4,
                    ),
                };
                let mut model = body;
                let r = run_quality(mlabel, &mut model, scenario, &scale, 23);
                // Equivalent (uncompressed) mults/pixel: the real model's
                // count — the accelerator serves it with n× sparsity.
                let equivalent = r.mults_per_pixel * accel.n as f64;
                let point = operating_point(accel, equivalent, &t);
                rows.push(vec![
                    accel.name.clone(),
                    mlabel.to_string(),
                    f2(point.nj_per_pixel),
                    f2(r.psnr_db),
                ]);
                json.push(Point {
                    accelerator: accel.name.clone(),
                    model: mlabel.to_string(),
                    nj_per_pixel: point.nj_per_pixel,
                    psnr_db: r.psnr_db,
                });
            }
        }
        print_table(
            &format!("Fig. 15 — quality vs energy/pixel, {}", scenario.label()),
            &["accelerator", "model", "nJ/pixel", "PSNR (dB)"],
            &rows,
        );
        save_json(
            &fl,
            &format!(
                "fig15_quality_energy_{}",
                scenario.label().replace(['(', ')', '=', '×', 'σ'], "_")
            ),
            &json,
        );
    }
    println!(
        "Shape targets: eRingCNN curves dominate eCNN; eRingCNN-n4 is preferred\n\
         at low energy budgets (curve crossover)."
    );
}
