//! Machine-readable perf snapshot: measures the conv-backend and
//! tiled-inference hot paths at several pool sizes and writes a
//! committed-schema `BENCH_<pr>.json` report (see `ringcnn_bench::perf`
//! for the schema and the regression-gate semantics).
//!
//! The pool size is fixed per process (the `rayon` shim reads
//! `RINGCNN_THREADS` once), so the driver re-executes itself as a child
//! per thread count:
//!
//! ```text
//! bench_json [--out PATH] [--pr N] [--threads 1,4] [--iters N]
//! bench_json --measure-child --iters N   # internal, one pool size
//! ```

use ringcnn::prelude::*;
use ringcnn_bench::perf::{BenchEntry, BenchReport, SCHEMA};
use ringcnn_bench::{f2, print_table};
use ringcnn_nn::runtime::{BatchRunner, TileConfig};

/// Stable id scheme: `workload/ring/backend/t<threads>`.
fn id(workload: &str, ring: &str, backend: &str, threads: usize) -> String {
    format!("{workload}/{ring}/{backend}/t{threads}")
}

fn entry(
    workload: &str,
    group: &str,
    ring: &str,
    backend: &str,
    threads: usize,
    ms: f64,
) -> BenchEntry {
    BenchEntry {
        id: id(workload, ring, backend, threads),
        group: group.into(),
        ring: ring.into(),
        backend: backend.into(),
        threads,
        ms,
    }
}

/// The measurement set for one pool size (runs inside the child).
fn measure_all(iters: usize) -> Vec<BenchEntry> {
    let threads = ringcnn_nn::runtime::num_threads();
    let mut entries = Vec::new();
    let x = Tensor::random_uniform(Shape4::new(1, 64, 32, 32), -1.0, 1.0, 1);

    // The serial calibration workload the gate divides by: measured in
    // every child so per-process machine load cancels out.
    let ms = ringcnn_bench::perf::measure_ms(iters, || {
        std::hint::black_box(ringcnn_bench::perf::calibration_workload());
    });
    entries.push(entry(
        "calibration",
        "calibration",
        "serial",
        "scalar",
        threads,
        ms,
    ));

    // Dense real convolution: naive vs im2col.
    for backend in [ConvBackend::Naive, ConvBackend::Im2col] {
        let mut layer = Conv2d::new(64, 64, 3, 9);
        layer.set_backend(backend);
        let ms = ringcnn_bench::perf::measure_ms(iters, || {
            std::hint::black_box(layer.forward_infer(&x));
        });
        entries.push(entry(
            "conv3x3_64ch_32px",
            "conv_backend",
            "real",
            backend.label(),
            threads,
            ms,
        ));
    }

    // Ring convolutions: every backend on the Table-I acceptance rings.
    for (label, kind) in [
        ("ri4", RingKind::Ri(4)),
        ("rh4", RingKind::Rh(4)),
        ("rh4i", RingKind::Rh4I),
    ] {
        for backend in ConvBackend::all() {
            let mut layer = RingConv2d::new(Ring::from_kind(kind), 64, 64, 3, 7);
            layer.set_backend(backend);
            layer.prepare_inference(); // Plan build is a one-time cost.
            let ms = ringcnn_bench::perf::measure_ms(iters, || {
                std::hint::black_box(layer.forward_infer(&x));
            });
            entries.push(entry(
                "conv3x3_64ch_32px",
                "conv_backend",
                label,
                backend.label(),
                threads,
                ms,
            ));
        }
    }

    // Tiled inference: the acceptance workload — a 64-channel 3×3
    // transform-path model (VDSR body over RH4), tile-parallel vs
    // whole-image on a 96×96 frame.
    let alg = Algebra::with_fcw(RingKind::Rh(4));
    let mut model = ringcnn_nn::models::vdsr::vdsr(&alg, 4, 64, 1, 11);
    let runner = BatchRunner::new(&mut model).with_tile(TileConfig::with_tile(32));
    let frame = Tensor::random_uniform(Shape4::new(1, 1, 96, 96), 0.0, 1.0, 13);
    let ms = ringcnn_bench::perf::measure_ms(iters, || {
        std::hint::black_box(runner.run(&frame));
    });
    entries.push(entry(
        "tiled_vdsr64_96px",
        "tiled_inference",
        "rh4",
        "tiled",
        threads,
        ms,
    ));
    let ms = ringcnn_bench::perf::measure_ms(iters, || {
        std::hint::black_box(runner.run_whole(&frame));
    });
    entries.push(entry(
        "tiled_vdsr64_96px",
        "tiled_inference",
        "rh4",
        "whole",
        threads,
        ms,
    ));

    // Batch runner: four independent 48×48 frames across the pool.
    let frames: Vec<Tensor> = (0..4)
        .map(|i| Tensor::random_uniform(Shape4::new(1, 1, 48, 48), 0.0, 1.0, 20 + i))
        .collect();
    let ms = ringcnn_bench::perf::measure_ms(iters, || {
        std::hint::black_box(runner.run_batch(&frames));
    });
    entries.push(entry(
        "batch4_vdsr64_48px",
        "batch",
        "rh4",
        "batch",
        threads,
        ms,
    ));

    // Quantized backend: the integer im2col pipeline vs the float
    // forward of the same calibrated FFDNet — the fp64-vs-quant
    // comparison the quantized serving story rests on.
    {
        let alg = Algebra::real();
        let mut model = ringcnn_nn::models::ffdnet::ffdnet(&alg, 3, 32, 1, 17);
        let frame = Tensor::random_uniform(Shape4::new(1, 1, 64, 64), 0.0, 1.0, 19);
        let qm = QuantizedModel::quantize(&mut model, &frame, QuantOptions::default());
        model.prepare_inference();
        let ms = ringcnn_bench::perf::measure_ms(iters, || {
            std::hint::black_box(model.forward_infer(&frame));
        });
        entries.push(entry(
            "quant_ffdnet32_64px",
            "quant_backend",
            "real",
            "fp64",
            threads,
            ms,
        ));
        let ms = ringcnn_bench::perf::measure_ms(iters, || {
            std::hint::black_box(qm.forward(&frame));
        });
        entries.push(entry(
            "quant_ffdnet32_64px",
            "quant_backend",
            "real",
            "quant",
            threads,
            ms,
        ));
    }

    entries.extend(measure_serve(threads));
    entries.extend(measure_serve_fleet(threads));
    entries
}

/// The serve-path hot paths: closed-loop loadgen over an in-process TCP
/// server with the two smoke models. `ms` is wall-clock per completed
/// request (throughput⁻¹) — the quantity micro-batching improves, so a
/// scheduler regression (or a batching win that rots) moves these
/// entries and trips the gate. Aggregating over a few hundred requests
/// replaces the best-of-N loop of `measure_ms`.
fn measure_serve(threads: usize) -> Vec<BenchEntry> {
    use ringcnn_serve::prelude::*;
    use std::time::Duration;

    let reg = ModelRegistry::new();
    let real = Algebra::real();
    let ffd = ModelSpec::Ffdnet {
        depth: 3,
        width: 8,
        channels_io: 1,
    };
    reg.register(
        "ffdnet_real",
        ffd,
        AlgebraSpec::of(&real),
        ffd.build(&real, 31),
    )
    .expect("register ffdnet");
    let rh4 = Algebra::with_fcw(RingKind::Rh(4));
    let vdsr = ModelSpec::Vdsr {
        depth: 3,
        width: 8,
        channels_io: 1,
    };
    reg.register(
        "vdsr_rh4",
        vdsr,
        AlgebraSpec::of(&rh4),
        vdsr.build(&rh4, 32),
    )
    .expect("register vdsr");
    // Attach a quantized pipeline to the FFDNet so the serve bench can
    // drive `precision: "quant"` through the full scheduler path.
    {
        let mut model = ffd.build(&real, 31);
        let batch = Tensor::random_uniform(Shape4::new(4, 1, 16, 16), 0.0, 1.0, 33);
        let qfile = ringcnn::quant::calibrate::calibrate_to_qmodel(
            "ffdnet_real",
            &ffd.label(),
            &real.label(),
            &mut model,
            &batch,
            QuantOptions::default(),
        )
        .expect("calibrate ffdnet");
        reg.register_qmodel(&qfile).expect("attach qmodel");
    }
    let server = Server::start(
        std::sync::Arc::new(reg),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig {
                workers: 2,
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_cap: 256,
                ..SchedulerConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback for serve bench");
    let addr = server.addr().to_string();

    let mut entries = Vec::new();
    for (workload, ring, models, connections, requests, precision, wire) in [
        (
            "serve_vdsr8_16px",
            "rh4",
            vec!["vdsr_rh4"],
            1,
            60,
            Precision::Fp64,
            Wire::Json,
        ),
        (
            "serve_vdsr8_16px",
            "rh4",
            vec!["vdsr_rh4"],
            8,
            240,
            Precision::Fp64,
            Wire::Json,
        ),
        (
            "serve_mix2_16px",
            "mixed",
            vec!["ffdnet_real", "vdsr_rh4"],
            8,
            240,
            Precision::Fp64,
            Wire::Json,
        ),
        // The gated fp64-vs-quant serving comparison: same model, same
        // offered load, integer pipeline.
        (
            "serve_ffdnet8_16px_fp64",
            "real",
            vec!["ffdnet_real"],
            8,
            240,
            Precision::Fp64,
            Wire::Json,
        ),
        (
            "serve_ffdnet8_16px_quant",
            "real",
            vec!["ffdnet_real"],
            8,
            240,
            Precision::Quant,
            Wire::Json,
        ),
        // The gated JSON-vs-binary wire comparison: same model, same
        // offered load, framed f32 payloads instead of ASCII floats.
        (
            "serve_vdsr8_16px_binary",
            "rh4",
            vec!["vdsr_rh4"],
            8,
            240,
            Precision::Fp64,
            Wire::Binary,
        ),
        (
            "serve_ffdnet8_16px_binary",
            "real",
            vec!["ffdnet_real"],
            8,
            240,
            Precision::Fp64,
            Wire::Binary,
        ),
    ] {
        let report = ringcnn_serve::loadgen::run(&ringcnn_serve::loadgen::LoadgenConfig {
            addr: addr.clone(),
            connections,
            requests,
            models: models.iter().map(|m| m.to_string()).collect(),
            hw: (16, 16),
            seed: 3,
            warmup: connections.max(2),
            precision,
            wire,
            ..ringcnn_serve::loadgen::LoadgenConfig::default()
        })
        .expect("serve bench loadgen");
        assert_eq!(report.errors, 0, "serve bench must complete cleanly");
        entries.push(entry(
            workload,
            "serve",
            ring,
            &format!("conn{connections}"),
            threads,
            report.ms_per_request,
        ));
    }

    // The tracing-overhead twins: the same FFDNet load measured
    // back-to-back with request tracing off, then tracing every request
    // (sampling 1, no slow capture — the always-on recording cost). The
    // traced entry joins the gated trajectory; the untraced run is the
    // local reference the ≤5% overhead contract is asserted against.
    {
        use ringcnn_trace::span;
        let twin = |addr: &str| {
            let report = ringcnn_serve::loadgen::run(&ringcnn_serve::loadgen::LoadgenConfig {
                addr: addr.to_string(),
                connections: 8,
                requests: 240,
                models: vec!["ffdnet_real".into()],
                hw: (16, 16),
                seed: 7,
                warmup: 8,
                precision: Precision::Fp64,
                wire: Wire::Json,
                ..ringcnn_serve::loadgen::LoadgenConfig::default()
            })
            .expect("serve trace-twin loadgen");
            assert_eq!(report.errors, 0, "trace-twin bench must complete cleanly");
            report.ms_per_request
        };
        let prev = span::sample_every();
        span::set_sample_every(0);
        let untraced = twin(&addr);
        span::set_sample_every(1);
        let traced = twin(&addr);
        span::set_sample_every(prev);
        assert!(
            traced <= untraced * 1.05 || traced - untraced <= 0.1,
            "tracing every request must cost ≤5% (untraced {untraced:.3} ms/req, \
             traced {traced:.3} ms/req)"
        );
        entries.push(entry(
            "serve_ffdnet8_16px_traced",
            "serve",
            "real",
            "conn8",
            threads,
            traced,
        ));
    }
    server.shutdown();
    entries
}

/// The fleet-scheduling canary: two models behind ONE worker, a hot
/// model hammering six closed-loop connections while a cold model sends
/// a single-connection trickle. The tracked quantity is the cold
/// model's mean ms/request — what the per-model weighted-fair queues
/// exist to protect (the mean over 100 closed-loop samples, not a
/// percentile: tail ranks of a small sample gate too noisily, and
/// head-of-line blocking inflates the mean just as surely).
/// Measured under both scheduling policies, so
/// the committed baseline pins the fair policy's protection and keeps
/// the FIFO-scan baseline honest next to it.
fn measure_serve_fleet(threads: usize) -> Vec<BenchEntry> {
    use ringcnn_serve::prelude::*;
    use std::time::Duration;

    let mut entries = Vec::new();
    for (workload, policy) in [
        ("serve_fleet_2model_fair", SchedPolicy::WeightedFair),
        ("serve_fleet_2model_fifo", SchedPolicy::FifoScan),
    ] {
        let reg = ModelRegistry::new();
        let real = Algebra::real();
        let ffd = ModelSpec::Ffdnet {
            depth: 3,
            width: 8,
            channels_io: 1,
        };
        reg.register(
            "ffdnet_real",
            ffd,
            AlgebraSpec::of(&real),
            ffd.build(&real, 31),
        )
        .expect("register ffdnet");
        let rh4 = Algebra::with_fcw(RingKind::Rh(4));
        let vdsr = ModelSpec::Vdsr {
            depth: 3,
            width: 8,
            channels_io: 1,
        };
        reg.register(
            "vdsr_rh4",
            vdsr,
            AlgebraSpec::of(&rh4),
            vdsr.build(&rh4, 32),
        )
        .expect("register vdsr");
        let server = Server::start(
            std::sync::Arc::new(reg),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                scheduler: SchedulerConfig {
                    workers: 1,
                    max_batch: 4,
                    max_wait: Duration::from_millis(1),
                    queue_cap: 256,
                    policy,
                    ..SchedulerConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback for fleet bench");
        let addr = server.addr().to_string();

        let cold = std::thread::scope(|scope| {
            let hot_addr = addr.clone();
            let hot = scope.spawn(move || {
                ringcnn_serve::loadgen::run(&ringcnn_serve::loadgen::LoadgenConfig {
                    addr: hot_addr,
                    connections: 6,
                    requests: 240,
                    models: vec!["vdsr_rh4".into()],
                    hw: (16, 16),
                    seed: 5,
                    warmup: 6,
                    ..ringcnn_serve::loadgen::LoadgenConfig::default()
                })
            });
            let cold = ringcnn_serve::loadgen::run(&ringcnn_serve::loadgen::LoadgenConfig {
                addr: addr.clone(),
                connections: 1,
                requests: 100,
                models: vec!["ffdnet_real".into()],
                hw: (16, 16),
                seed: 6,
                warmup: 2,
                ..ringcnn_serve::loadgen::LoadgenConfig::default()
            })
            .expect("fleet bench cold loadgen");
            let hot = hot
                .join()
                .expect("hot loadgen thread")
                .expect("fleet bench hot loadgen");
            assert_eq!(
                hot.errors + cold.errors,
                0,
                "fleet bench must complete cleanly"
            );
            cold
        });
        server.shutdown();
        entries.push(entry(
            workload,
            "serve",
            "mixed",
            "cold",
            threads,
            cold.ms_per_request,
        ));
    }
    entries
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters: usize = arg_value(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    if args.iter().any(|a| a == "--measure-child") {
        for e in measure_all(iters) {
            println!("{}", serde_json::to_string(&e).expect("entry serializes"));
        }
        return;
    }

    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/BENCH_current.json".into());
    let pr: usize = arg_value(&args, "--pr")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads_list: Vec<usize> = arg_value(&args, "--threads")
        .unwrap_or_else(|| "1,4".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();

    let exe = std::env::current_exe().expect("own path");
    let mut entries = Vec::new();
    for &threads in &threads_list {
        eprintln!("measuring with RINGCNN_THREADS={threads} …");
        let output = std::process::Command::new(&exe)
            .args(["--measure-child", "--iters", &iters.to_string()])
            .env("RINGCNN_THREADS", threads.to_string())
            .output()
            .expect("child bench run");
        assert!(
            output.status.success(),
            "child bench (threads={threads}) failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        for line in String::from_utf8_lossy(&output.stdout).lines() {
            let line = line.trim();
            if line.starts_with('{') {
                let e: BenchEntry = serde_json::from_str(line).expect("entry parses");
                entries.push(e);
            }
        }
    }

    let report = BenchReport {
        schema: SCHEMA.into(),
        pr,
        threads_available: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        // Workload prefix: the gate appends `/t<threads>` to pick the
        // per-child-process divisor.
        calibration_id: "calibration/serial/scalar".into(),
        entries,
    };

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("report serializes"),
    )
    .expect("write report");
    println!("wrote {out} ({} entries)", report.entries.len());

    // Human summary: per workload/ring/backend, ms at each pool size and
    // the multi-thread speedup.
    let mut rows = Vec::new();
    let mut seen = Vec::new();
    for e in &report.entries {
        let key = (e.group.clone(), e.ring.clone(), e.backend.clone(), {
            let mut w = e.id.clone();
            w.truncate(e.id.find('/').unwrap_or(e.id.len()));
            w
        });
        if seen.contains(&key) {
            continue;
        }
        seen.push(key.clone());
        let (group, ring, backend, workload) = key;
        let ms_at = |t: usize| {
            report
                .entry(&id(&workload, &ring, &backend, t))
                .map(|e| e.ms)
        };
        let t0 = threads_list.first().copied().unwrap_or(1);
        let tn = threads_list.last().copied().unwrap_or(1);
        let (Some(a), Some(b)) = (ms_at(t0), ms_at(tn)) else {
            continue;
        };
        rows.push(vec![
            workload,
            group,
            ring,
            backend,
            f2(a),
            f2(b),
            if b > 0.0 {
                format!("{:.2}×", a / b)
            } else {
                "—".into()
            },
        ]);
    }
    print_table(
        "Bench snapshot",
        &[
            "workload",
            "group",
            "ring",
            "backend",
            &format!("ms (t{})", threads_list.first().copied().unwrap_or(1)),
            &format!("ms (t{})", threads_list.last().copied().unwrap_or(1)),
            "speedup",
        ],
        &rows,
    );
}
