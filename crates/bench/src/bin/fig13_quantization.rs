//! Fig. 13: effect of 8-bit dynamic fixed-point quantization.
//!
//! Top panel: PSNR degradation of quantized models from their float
//! versions (real vs ring tensors). Bottom panel: quantized eRingCNN
//! models versus quantized eCNN models. Plus the §IV-C ablations:
//! component-wise vs single Q-formats, and on-the-fly vs MAC-based
//! directional ReLU (the up-to-0.2 dB claim).

use ringcnn::prelude::*;
use ringcnn_bench::{f2, f3, flags, print_table, save_json};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    scenario: String,
    algebra: String,
    float_psnr: f64,
    quant_psnr: f64,
    drop_db: f64,
    single_q_psnr: f64,
    mac_drelu_psnr: f64,
}

fn quant_eval(
    model: &mut Sequential,
    scenario: Scenario,
    scale: &ExperimentScale,
    opts: QuantOptions,
) -> f64 {
    // Quantize on training data, evaluate on the test profiles.
    let calib = training_pairs(scenario, scale);
    let qm = QuantizedModel::quantize(model, &calib.inputs, opts);
    let profiles = eval_profiles(scenario);
    let mut total = 0.0;
    for p in &profiles {
        let pairs = eval_pairs(scenario, *p, scale);
        let pred = qm.forward(&pairs.inputs);
        total += psnr(&pred, &pairs.targets);
    }
    total / profiles.len() as f64
}

fn main() {
    let fl = flags();
    let scale = fl.scale;
    let mut json = Vec::new();
    let scenarios = [
        Scenario::Denoise { sigma: 15.0 },
        Scenario::Denoise { sigma: 25.0 },
        Scenario::Sr4,
    ];
    let algebras = [
        ("real (eCNN)".to_string(), Algebra::real()),
        ("(RI2,fH)".to_string(), Algebra::ri_fh(2)),
        ("(RI4,fH)".to_string(), Algebra::ri_fh(4)),
    ];
    for scenario in scenarios {
        let mut rows = Vec::new();
        for (label, alg) in &algebras {
            let mut model = build_model(scenario, ThroughputTarget::Uhd30, alg, 71);
            let float_psnr = {
                let r = run_quality(label.clone(), &mut model, scenario, &scale, 17);
                r.psnr_db
            };
            let q = quant_eval(&mut model, scenario, &scale, QuantOptions::default());
            let single = quant_eval(
                &mut model,
                scenario,
                &scale,
                QuantOptions {
                    component_wise: false,
                    ..QuantOptions::default()
                },
            );
            let mac = quant_eval(
                &mut model,
                scenario,
                &scale,
                QuantOptions {
                    on_the_fly_drelu: false,
                    ..QuantOptions::default()
                },
            );
            rows.push(vec![
                label.clone(),
                f2(float_psnr),
                f2(q),
                f3(float_psnr - q),
                f2(single),
                f2(mac),
            ]);
            json.push(Entry {
                scenario: scenario.label(),
                algebra: label.clone(),
                float_psnr,
                quant_psnr: q,
                drop_db: float_psnr - q,
                single_q_psnr: single,
                mac_drelu_psnr: mac,
            });
        }
        print_table(
            &format!("Fig. 13 — 8-bit quantization, {}", scenario.label()),
            &[
                "algebra",
                "float PSNR",
                "8-bit PSNR",
                "drop (dB)",
                "single-Q PSNR",
                "MAC-based fH PSNR",
            ],
            &rows,
        );
    }
    println!(
        "Shape targets: drops are small (~0.1 dB class) and similar for real and\n\
         ring algebras; component-wise Q ≥ single-Q; on-the-fly ≥ MAC-based."
    );
    save_json(&fl, "fig13_quantization", &json);
}
