//! Table VI: area and power breakdowns of the eRingCNN configurations
//! (model predictions), including the directional-ReLU share of the
//! 3×3 engine (paper: 3.4% at n = 2, 8.9% at n = 4).

use ringcnn_algebra::relu::Nonlinearity;
use ringcnn_algebra::ring::{Ring, RingKind};
use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_hw::prelude::*;

fn main() {
    let fl = flags();
    let t = TechParams::tsmc40();
    let mut json = Vec::new();
    for cfg in [
        AcceleratorConfig::eringcnn_n2(),
        AcceleratorConfig::eringcnn_n4(),
    ] {
        let r = layout_report(&cfg, &t);
        let rows: Vec<Vec<String>> = r
            .breakdown
            .iter()
            .map(|b| {
                vec![
                    b.component.clone(),
                    f2(b.area_mm2),
                    f2(100.0 * b.area_mm2 / r.area_mm2),
                    f2(b.power_w),
                    f2(100.0 * b.power_w / r.power_w),
                ]
            })
            .collect();
        print_table(
            &format!("Table VI — breakdown, {}", r.name),
            &["component", "area mm²", "area %", "power W", "power %"],
            &rows,
        );
        json.push(r);
    }
    // Directional-ReLU share of the 3×3 engine.
    let mut rows = Vec::new();
    for (n, paper) in [(2usize, 3.4), (4usize, 8.9)] {
        let with = estimate_engine(
            &Ring::from_kind(RingKind::Ri(n)),
            Nonlinearity::DirectionalH,
            8,
            &t,
        );
        let without = estimate_engine(&Ring::from_kind(RingKind::Ri(n)), Nonlinearity::None, 8, &t);
        let frac = 100.0 * (1.0 - without.area_mm2 / with.area_mm2);
        rows.push(vec![format!("n={n}"), f2(frac), f2(paper)]);
    }
    print_table(
        "Directional-ReLU share of the RCONV-3×3 engine area",
        &["config", "model %", "paper %"],
        &rows,
    );
    save_json(&fl, "table6_breakdown", &json);
}
