//! Fig. 12: synthesis-level area efficiency versus PSNR for 8-bit
//! fixed-point FRCONV engines of every ring. Area efficiencies come from
//! the gate-level engine model; PSNR from training each ring's SR4ERNet
//! and quantizing it to 8 bits.

use ringcnn::prelude::*;
use ringcnn_algebra::relu::Nonlinearity;
use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_hw::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    ring: String,
    area_efficiency: f64,
    psnr_8bit: f64,
}

fn main() {
    let fl = flags();
    let scale = fl.scale;
    let scenario = Scenario::Sr4;
    let engines = fig12_engines(8);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in &engines {
        // Skip the real baseline in the quality sweep (efficiency 1.0).
        let alg = match (e.ring, e.nonlinearity) {
            (k, Nonlinearity::DirectionalH) => Algebra::new(k, Nonlinearity::DirectionalH),
            (k, _) if k.n() == 1 => Algebra::real(),
            (k, _) => Algebra::with_fcw(k),
        };
        let mut model = build_model(scenario, ThroughputTarget::Uhd30, &alg, 81);
        let _ = train_model(&mut model, scenario, &scale, 19);
        let calib = training_pairs(scenario, &scale);
        let qm = QuantizedModel::quantize(&mut model, &calib.inputs, QuantOptions::default());
        let profiles = eval_profiles(scenario);
        let mut total = 0.0;
        for p in &profiles {
            let pairs = eval_pairs(scenario, *p, &scale);
            total += psnr(&qm.forward(&pairs.inputs), &pairs.targets);
        }
        let q_psnr = total / profiles.len() as f64;
        let label = format!("{} ({})", e.ring.label(), e.nonlinearity.label());
        rows.push(vec![label.clone(), f2(e.area_efficiency), f2(q_psnr)]);
        json.push(Entry {
            ring: label,
            area_efficiency: e.area_efficiency,
            psnr_8bit: q_psnr,
        });
    }
    print_table(
        "Fig. 12 — Engine area efficiency vs 8-bit PSNR (SR×4)",
        &["engine", "area efficiency (vs real)", "PSNR (dB)"],
        &rows,
    );
    println!(
        "Shape target: (RI,fH) sits top-right — the smallest area AND the best\n\
         quality at each n (paper: ~1.8×/1.5× area over RH4-I/RH4 with ~0.1 dB gain)."
    );
    save_json(&fl, "fig12_area_quality", &json);
}
