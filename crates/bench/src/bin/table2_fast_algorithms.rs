//! Table II: isomorphic `G` structures and fast algorithms per ring —
//! `(S, P)` tables, transform shapes, adder-only check, and a numerical
//! verification that each `(Tg, Tx, Tz)` computes its ring exactly.

use ringcnn_algebra::prelude::*;
use ringcnn_bench::{flags, print_table, save_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ring: String,
    n: usize,
    m: usize,
    adder_only: bool,
    verified: bool,
    g_structure: String,
}

fn g_structure(ring: &Ring) -> String {
    match ring.sign_perm() {
        None => "diag(g0..gn-1)".to_string(),
        Some(sp) => {
            let n = sp.n();
            let mut rows = Vec::new();
            for i in 0..n {
                let mut row = Vec::new();
                for j in 0..n {
                    let s = if sp.sign(i, j) > 0 { "+" } else { "-" };
                    row.push(format!("{s}g{}", sp.perm(i, j)));
                }
                rows.push(row.join(" "));
            }
            rows.join(" ; ")
        }
    }
}

fn main() {
    let fl = flags();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for kind in RingKind::table_one() {
        let ring = Ring::from_kind(kind);
        let verified = ring.fast().tensor().distance(&ring.indexing_tensor()) < 1e-6;
        let row = Row {
            ring: kind.label(),
            n: ring.n(),
            m: ring.fast().m(),
            adder_only: ring.fast().has_adder_only_transforms(),
            verified,
            g_structure: g_structure(&ring),
        };
        rows.push(vec![
            row.ring.clone(),
            row.n.to_string(),
            row.m.to_string(),
            row.adder_only.to_string(),
            row.verified.to_string(),
            row.g_structure.clone(),
        ]);
        json.push(row);
    }
    print_table(
        "Table II — Isomorphic G and fast algorithms",
        &[
            "ring",
            "n",
            "m",
            "adder-only transforms",
            "verified",
            "G rows (S_ij g_Pij)",
        ],
        &rows,
    );
    save_json(&fl, "table2_fast_algorithms", &json);
}
