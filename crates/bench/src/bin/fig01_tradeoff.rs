//! Fig. 1: computation efficiency versus image quality for SRResNet
//! complexity-reduction variants — unstructured weight pruning (2/4/8×),
//! depth-wise convolution, depth reduction, channel reduction, and
//! RingCNN `(RI, fH)` at n = 2/4/8 — all on the ×4 SR task.

use ringcnn::prelude::*;
use ringcnn_bench::{f2, f3, flags, print_table, save_json};
use ringcnn_nn::models::srresnet::{srresnet, SrResNetConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    method: String,
    gmults_per_hd_frame: f64,
    psnr_db: f64,
}

fn wrap(body: Sequential) -> Sequential {
    ringcnn::scenarios::with_bicubic_skip(body, 4)
}

fn main() {
    let fl = flags();
    let scale = fl.scale;
    let extra = ExperimentScale {
        steps: scale.steps / 2,
        ..scale
    };
    let cfg = SrResNetConfig::tiny();
    let scenario = Scenario::Sr4;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json = Vec::new();
    let record = |label: &str,
                  model: &mut Sequential,
                  rows: &mut Vec<Vec<String>>,
                  json: &mut Vec<Entry>| {
        let psnr = evaluate_model(model, scenario, &scale);
        // GMults for one Full-HD *input* frame (LR side of the SR task).
        let g = gmults_per_frame(model, 1920, 1080);
        rows.push(vec![label.to_string(), f3(g), f2(psnr)]);
        json.push(Entry {
            method: label.into(),
            gmults_per_hd_frame: g,
            psnr_db: psnr,
        });
    };

    // Dense SRResNet baseline.
    let mut base = wrap(srresnet(&Algebra::real(), cfg, 1, 51));
    let _ = train_model(&mut base, scenario, &scale, 3);
    let _ = train_model(&mut base, scenario, &extra, 4);
    record("SRResNet (dense)", &mut base, &mut rows, &mut json);

    // Unstructured pruning sweep.
    for compression in [2.0f64, 4.0, 8.0] {
        let mut m = wrap(srresnet(&Algebra::real(), cfg, 1, 51));
        let _ = train_model(&mut m, scenario, &scale, 3);
        let _ = global_magnitude_prune(&mut m, compression);
        let _ = train_model(&mut m, scenario, &extra, 4);
        record(
            &format!("weight pruning {compression}x"),
            &mut m,
            &mut rows,
            &mut json,
        );
    }

    // Depth-wise convolution variant.
    let mut dwc = wrap(srresnet(&Algebra::real(), cfg.with_depthwise(), 1, 51));
    let _ = train_model(&mut dwc, scenario, &scale, 3);
    let _ = train_model(&mut dwc, scenario, &extra, 4);
    record("DWC", &mut dwc, &mut rows, &mut json);

    // Depth reduction (keep channels).
    let mut shallow = wrap(srresnet(&Algebra::real(), cfg.with_blocks(1), 1, 51));
    let _ = train_model(&mut shallow, scenario, &scale, 3);
    let _ = train_model(&mut shallow, scenario, &extra, 4);
    record("depth reduction", &mut shallow, &mut rows, &mut json);

    // Channel reduction (keep depth).
    let mut narrow = wrap(srresnet(&Algebra::real(), cfg.with_channels(8), 1, 51));
    let _ = train_model(&mut narrow, scenario, &scale, 3);
    let _ = train_model(&mut narrow, scenario, &extra, 4);
    record("channel reduction", &mut narrow, &mut rows, &mut json);

    // RingCNN (RI, fH) at n = 2, 4, 8.
    for n in [2usize, 4, 8] {
        let mut ring = wrap(srresnet(&Algebra::ri_fh(n), cfg, 1, 51));
        let _ = train_model(&mut ring, scenario, &scale, 3);
        let _ = train_model(&mut ring, scenario, &extra, 4);
        record(
            &format!("RingCNN (RI{n},fH)"),
            &mut ring,
            &mut rows,
            &mut json,
        );
    }

    print_table(
        "Fig. 1 — Computation efficiency vs image quality (SRResNet, SR×4)",
        &["method", "GMults / HD input frame", "PSNR (dB)"],
        &rows,
    );
    println!(
        "Shape targets: pruning degrades gracefully; DWC collapses; channel\n\
         reduction beats depth reduction; RingCNN tracks/beats pruning at equal\n\
         compression with fully regular compute."
    );
    save_json(&fl, "fig01_tradeoff", &json);
}
