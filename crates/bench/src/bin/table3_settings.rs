//! Table III: training settings — the paper's lightweight/polishment
//! protocol and our CPU-scale analogues used across all experiments.

use ringcnn::prelude::ExperimentScale;
use ringcnn_bench::{flags, print_table, save_json};

fn main() {
    let fl = flags();
    let quick = ExperimentScale::quick();
    let standard = ExperimentScale::standard();
    let rows = vec![
        vec![
            "paper: lightweight".into(),
            "DIV2K (800 img)".into(),
            "64×64".into(),
            "~200 epochs, Adam".into(),
            "float32".into(),
        ],
        vec![
            "paper: polishment".into(),
            "DIV2K + Waterloo".into(),
            "64×64".into(),
            "+100-200 epochs, LR/10".into(),
            "8-bit fine-tune".into(),
        ],
        vec![
            "ours: quick".into(),
            format!("synthetic Train ({} patches)", quick.train_count),
            format!("{0}×{0}", quick.patch),
            format!("{} steps, Adam lr={}, decay@70%", quick.steps, quick.lr),
            "float32 + 8-bit PTQ".into(),
        ],
        vec![
            "ours: --standard".into(),
            format!("synthetic Train ({} patches)", standard.train_count),
            format!("{0}×{0}", standard.patch),
            format!(
                "{} steps, Adam lr={}, decay@70%",
                standard.steps, standard.lr
            ),
            "float32 + 8-bit PTQ".into(),
        ],
    ];
    print_table(
        "Table III — training settings (paper protocol and our analogues)",
        &["setting", "training data", "patch", "schedule", "precision"],
        &rows,
    );
    save_json(&fl, "table3_settings", &vec![quick, standard]);
}
