//! CI perf-regression gate: compares a fresh `bench_json` report against
//! the newest committed `BENCH_<n>.json` baseline and fails (exit 1)
//! when any tracked hot path regresses beyond tolerance.
//!
//! ```text
//! perf_gate --fresh results/BENCH_current.json [--baseline-dir .]
//!           [--tolerance 0.2]
//! ```
//!
//! Times are calibration-normalized before comparison (see
//! `ringcnn_bench::perf`), so a baseline committed from a different
//! machine still gates meaningfully. With no baseline on disk the gate
//! prints a skip notice and exits 0 — the bootstrap path.
//! `PERF_GATE_TOLERANCE` overrides the default 20% tolerance.

use ringcnn_bench::perf::{compare, find_baseline, BenchReport, DEFAULT_TOLERANCE};
use std::path::Path;
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(fresh_path) = arg_value(&args, "--fresh") else {
        eprintln!("usage: perf_gate --fresh <BENCH json> [--baseline-dir <dir>] [--tolerance <f>]");
        return ExitCode::FAILURE;
    };
    let baseline_dir = arg_value(&args, "--baseline-dir").unwrap_or_else(|| ".".into());
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .or_else(|| std::env::var("PERF_GATE_TOLERANCE").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TOLERANCE);

    let fresh_text = match std::fs::read_to_string(&fresh_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_gate: cannot read fresh report {fresh_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fresh: BenchReport = match serde_json::from_str(&fresh_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: fresh report {fresh_path} does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };

    let baseline = find_baseline(Path::new(&baseline_dir), Some(Path::new(&fresh_path)));
    match &baseline {
        Some((path, report)) => {
            println!("baseline: {} (pr {})", path.display(), report.pr)
        }
        None => println!("baseline: none found under {baseline_dir}"),
    }

    let outcome = compare(&fresh, baseline.as_ref().map(|(_, r)| r), tolerance);
    if let Some(reason) = &outcome.skipped {
        println!("perf gate SKIPPED: {reason}");
        return ExitCode::SUCCESS;
    }
    println!(
        "perf gate checked {} tracked paths at {:.0}% tolerance",
        outcome.checked,
        tolerance * 100.0
    );
    if outcome.passed() {
        println!("perf gate PASSED");
        ExitCode::SUCCESS
    } else {
        for f in &outcome.failures {
            eprintln!("REGRESSION: {f}");
        }
        eprintln!("perf gate FAILED ({} regressions)", outcome.failures.len());
        ExitCode::FAILURE
    }
}
