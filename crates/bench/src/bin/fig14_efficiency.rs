//! Fig. 14: area and power efficiency of eRingCNN relative to eCNN, at
//! the engine level and the whole-accelerator level.

use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_hw::prelude::*;

fn main() {
    let fl = flags();
    let t = TechParams::tsmc40();
    let paper = [
        ("eRingCNN-n2", 2.08, 2.00, 1.64, 1.85),
        ("eRingCNN-n4", 3.77, 3.84, 2.36, 3.12),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (cfg, p) in [
        AcceleratorConfig::eringcnn_n2(),
        AcceleratorConfig::eringcnn_n4(),
    ]
    .iter()
    .zip(paper)
    {
        let e = efficiency_vs_ecnn(cfg, &t);
        rows.push(vec![
            e.name.clone(),
            format!("{} ({})", f2(e.engine_area), f2(p.1)),
            format!("{} ({})", f2(e.engine_energy), f2(p.2)),
            format!("{} ({})", f2(e.chip_area), f2(p.3)),
            format!("{} ({})", f2(e.chip_energy), f2(p.4)),
        ]);
        json.push(e);
    }
    print_table(
        "Fig. 14 — Efficiency vs eCNN: model (paper)",
        &[
            "design",
            "engine area ×",
            "engine energy ×",
            "chip area ×",
            "chip energy ×",
        ],
        &rows,
    );
    save_json(&fl, "fig14_efficiency", &json);
}
