//! Table VIII: comparison with SparTen (natural sparsity), TIE (low-rank)
//! and CirCNN (full-rank) on equivalent TOPS/W.

use ringcnn_bench::{flags, print_table, save_json};
use ringcnn_hw::prelude::*;

fn main() {
    let fl = flags();
    let rows_data = table8(&TechParams::tsmc40());
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.approach.clone(),
                r.compression.clone(),
                if r.equivalent_tops_per_watt.is_nan() {
                    "n/a (qualitative)".to_string()
                } else {
                    format!("{:.1}", r.equivalent_tops_per_watt)
                },
                r.provenance.clone(),
            ]
        })
        .collect();
    print_table(
        "Table VIII — sparsity-accelerator comparison (synthesis level)",
        &[
            "design",
            "sparsity approach",
            "compression",
            "equiv. TOPS/W",
            "provenance",
        ],
        &rows,
    );
    println!(
        "Shape target: algebraic sparsity at only 2-4x compression beats SparTen\n\
         (2.7) and CirCNN (10.0 at 66x)."
    );
    save_json(&fl, "table8_sparsity_accels", &rows_data);
}
