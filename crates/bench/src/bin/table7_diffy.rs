//! Table VII: comparison with Diffy for computational imaging at the
//! FFDNet-level Full-HD 20 fps operating point (167 MHz).

use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_hw::competitors::published;
use ringcnn_hw::prelude::*;

fn main() {
    let fl = flags();
    let rows_data = table7(&TechParams::tsmc40());
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                f2(r.power_w),
                f2(r.nj_per_pixel),
                f2(r.efficiency_vs_diffy),
            ]
        })
        .collect();
    print_table(
        "Table VII — vs Diffy (FFDNet-level, Full-HD 20 fps, 167 MHz)",
        &[
            "design",
            "power (W)",
            "nJ/pixel",
            "energy efficiency vs Diffy",
        ],
        &rows,
    );
    println!(
        "Paper: n2 = {:.2}x, n4 = {:.2}x over Diffy (the n2 row anchors the Diffy\n\
         energy; the independently reproduced quantity is the n4/n2 ratio).",
        published::VS_DIFFY.0,
        published::VS_DIFFY.1
    );
    save_json(&fl, "table7_diffy", &rows_data);
}
