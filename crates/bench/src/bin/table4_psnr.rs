//! Table IV: PSNR of the RingCNN models on eRingCNN versus classical and
//! advanced baselines, at the HD30 and UHD30 throughput targets.
//!
//! Baselines: classical (blur/bicubic, standing in for CBM3D/bicubic),
//! VDSR, FFDNet-like, SRResNet, and the real-valued eCNN models; ours:
//! `(RI2, fH)` and `(RI4, fH)`.

use ringcnn::prelude::*;
use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_nn::models::{ffdnet::ffdnet, srresnet};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    scenario: String,
    target: String,
    method: String,
    psnr_db: f64,
}

fn main() {
    let fl = flags();
    let scale = fl.scale;
    let mut json = Vec::new();
    for scenario in [Scenario::Denoise { sigma: 25.0 }, Scenario::Sr4] {
        for target in [ThroughputTarget::Hd30, ThroughputTarget::Uhd30] {
            let mut rows = Vec::new();
            // Classical baseline.
            let classical = classical_baseline(scenario, &scale);
            let classical_name = match scenario {
                Scenario::Denoise { .. } => "blur (CBM3D stand-in)",
                Scenario::Sr4 => "bicubic",
            };
            rows.push(vec![classical_name.to_string(), f2(classical)]);
            json.push(Entry {
                scenario: scenario.label(),
                target: target.label().into(),
                method: classical_name.into(),
                psnr_db: classical,
            });
            // Advanced baselines + our models.
            let mut models: Vec<(String, Sequential)> = Vec::new();
            match scenario {
                Scenario::Denoise { .. } => {
                    models.push((
                        "FFDNet-like".into(),
                        ffdnet(&Algebra::real(), 5, target.ernet_config().width, 1, 61),
                    ));
                }
                Scenario::Sr4 => {
                    models.push((
                        // VDSR-class: shallow residual SR baseline (the
                        // original runs at HR resolution; ours is the
                        // depth-matched analogue at LR + shuffle).
                        "VDSR-class (shallow)".into(),
                        ringcnn::scenarios::with_bicubic_skip(
                            srresnet::srresnet(
                                &Algebra::real(),
                                srresnet::SrResNetConfig {
                                    blocks: 1,
                                    channels: target.ernet_config().width,
                                    depthwise: false,
                                },
                                1,
                                62,
                            ),
                            4,
                        ),
                    ));
                    models.push((
                        "SRResNet-like".into(),
                        ringcnn::scenarios::with_bicubic_skip(
                            srresnet::srresnet(
                                &Algebra::real(),
                                srresnet::SrResNetConfig {
                                    blocks: 3,
                                    channels: target.ernet_config().width,
                                    depthwise: false,
                                },
                                1,
                                63,
                            ),
                            4,
                        ),
                    ));
                }
            }
            models.push((
                "eCNN (real ERNet)".into(),
                build_model(scenario, target, &Algebra::real(), 64),
            ));
            models.push((
                "eRingCNN-n2 (RI2,fH)".into(),
                build_model(scenario, target, &Algebra::ri_fh(2), 64),
            ));
            models.push((
                "eRingCNN-n4 (RI4,fH)".into(),
                build_model(scenario, target, &Algebra::ri_fh(4), 64),
            ));
            for (label, mut model) in models {
                let r = run_quality(label.clone(), &mut model, scenario, &scale, 13);
                rows.push(vec![label.clone(), f2(r.psnr_db)]);
                json.push(Entry {
                    scenario: scenario.label(),
                    target: target.label().into(),
                    method: label,
                    psnr_db: r.psnr_db,
                });
            }
            print_table(
                &format!("Table IV — PSNR, {} @ {}", scenario.label(), target.label()),
                &["method", "PSNR (dB)"],
                &rows,
            );
        }
    }
    println!(
        "Shape targets: all CNNs ≫ classical; eRingCNN-n2 ≈ eCNN (±0.05 dB);\n\
         eRingCNN-n4 within ~0.2 dB of eCNN."
    );
    save_json(&fl, "table4_psnr", &json);
}
