//! Design-space sweep (extension beyond the paper's two build points):
//! eRingCNN-style accelerators at n = 1…16, showing where algebraic
//! sparsity's returns saturate against fixed overheads.

use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_hw::prelude::*;

fn main() {
    let fl = flags();
    let t = TechParams::tsmc40();
    let pts = sweep_n(&[1, 2, 4, 8, 16], &t);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("n={}", p.n),
                f2(p.area_mm2),
                f2(p.power_w),
                f2(p.tops),
                f2(p.tops_per_watt),
                f2(p.overhead_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "Design-space sweep: eRingCNN vs ring dimension (250 MHz)",
        &[
            "config",
            "area mm²",
            "power W",
            "equiv. TOPS",
            "TOPS/W",
            "non-conv overhead %",
        ],
        &rows,
    );
    println!(
        "Extrapolation of Fig. 14: engine savings keep scaling ~n, but the fixed\n\
         block-buffer/datapath overhead dominates, flattening whole-chip gains\n\
         (and Fig. 11 shows quality already degrades by n = 8)."
    );
    save_json(&fl, "hw_sweep", &pts);
}
