//! Block-based inference flow study (§V): halo-recompute overhead and
//! seam exactness versus block size — the mechanism that lets eRingCNN
//! serve 4K UHD with only ~2 GB/s of DRAM bandwidth (features never
//! leave the chip).

use ringcnn::prelude::*;
use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_esim::prelude::*;
use ringcnn_hw::prelude::{AcceleratorConfig, TechParams};

fn main() {
    let fl = flags();
    let scale = fl.scale;
    let scenario = Scenario::Denoise { sigma: 25.0 };
    let alg = Algebra::ri_fh(4);
    let mut model = build_model(scenario, ThroughputTarget::Uhd30, &alg, 42);
    let _ = train_model(&mut model, scenario, &scale, 7);
    let calib = training_pairs(scenario, &scale);
    let qm = QuantizedModel::quantize(&mut model, &calib.inputs, QuantOptions::default());
    let halo = receptive_halo(&qm);
    println!("receptive-field radius (halo requirement): {halo} input pixels");

    let image = add_gaussian_noise(&dataset(DatasetProfile::Bsd, 64, 1), 25.0, 3);
    let whole = qm.forward(&image);
    let accel = AcceleratorConfig::eringcnn_n4();
    let t = TechParams::tsmc40();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for block in [16usize, 32, 64] {
        let (out, report) = simulate_blocked(&qm, &image, &accel, &t, block, halo);
        // Interior (seam-inclusive) exactness.
        let r = halo.next_multiple_of(4);
        let s = whole.shape();
        let mut exact = true;
        for c in 0..s.c {
            for y in r..s.h - r {
                for x in r..s.w - r {
                    if out.at(0, c, y, x) != whole.at(0, c, y, x) {
                        exact = false;
                    }
                }
            }
        }
        rows.push(vec![
            block.to_string(),
            report.blocks.to_string(),
            f2(report.recompute_overhead * 100.0),
            exact.to_string(),
            report.cycles.to_string(),
            f2(report.energy_j * 1e6),
        ]);
        json.push(report);
    }
    print_table(
        "Block-based inference (64×64 frame, eRingCNN-n4)",
        &[
            "block px",
            "blocks",
            "halo-recompute overhead %",
            "interior bit-exact",
            "cycles",
            "energy (µJ)",
        ],
        &rows,
    );
    println!(
        "Shape: smaller blocks → smaller on-chip buffers but more halo re-reads;\n\
         interior/seam outputs stay bit-exact whenever halo ≥ receptive radius."
    );
    save_json(&fl, "blocked_inference", &json);
}
