//! The §III-C exhaustive proper-ring search (supports Table I/II): runs
//! the (C1)–(C3) search for n = 2 and n = 4 and reports the permutation
//! classes, granks, and minimal variants — the paper's claim is two
//! non-isomorphic permutations for n = 4 with minimum granks 4 and 5.

use ringcnn_algebra::search::{search_proper_rings, SearchOptions};
use ringcnn_bench::{flags, print_table, save_json};

fn main() {
    let fl = flags();
    let mut json = Vec::new();
    for n in [2usize, 4] {
        let report = search_proper_rings(n, &SearchOptions::default());
        let rows: Vec<Vec<String>> = report
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                vec![
                    format!("class {i}"),
                    format!("{:?}", c.perm),
                    c.num_sign_patterns.to_string(),
                    c.variants.len().to_string(),
                    c.min_grank.to_string(),
                    c.minimal_variants().len().to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("Proper-ring search, n = {n}"),
            &[
                "perm class",
                "P (row-major)",
                "sign patterns",
                "assoc. variants",
                "min grank",
                "minimal variants",
            ],
            &rows,
        );
        json.push(report.summary());
    }
    println!(
        "Paper claims reproduced when: n=2 has 1 class (RH2 grank 2, C grank 3);\n\
         n=4 has 2 classes with min granks 4 (RH4/RO4) and 5 (cyclic twists)."
    );
    save_json(&fl, "ring_search", &json);
}
