//! eRingCNN simulator validation (§V): runs quantized scenario models on
//! the cycle-approximate simulator, checks bit-exactness against the
//! quantization reference, and reports cycles, utilization, throughput,
//! energy, and memory footprints for each configuration.

use ringcnn::prelude::*;
use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_esim::prelude::*;
use ringcnn_hw::prelude::{AcceleratorConfig, TechParams};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    accelerator: String,
    scenario: String,
    bit_exact: bool,
    cycles: u64,
    utilization: f64,
    fps_equivalent_1080p: f64,
    nj_per_output_pixel: f64,
    weight_kb: f64,
    weights_fit: bool,
}

fn main() {
    let fl = flags();
    let scale = fl.scale;
    let t = TechParams::tsmc40();
    let image = 32usize;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (accel, alg) in [
        (AcceleratorConfig::ecnn(), Algebra::real()),
        (AcceleratorConfig::eringcnn_n2(), Algebra::ri_fh(2)),
        (AcceleratorConfig::eringcnn_n4(), Algebra::ri_fh(4)),
    ] {
        for scenario in [Scenario::Denoise { sigma: 25.0 }, Scenario::Sr4] {
            let mut model = build_model(scenario, ThroughputTarget::Uhd30, &alg, 55);
            let _ = train_model(&mut model, scenario, &scale, 5);
            let calib = training_pairs(scenario, &scale);
            let qm = QuantizedModel::quantize(&mut model, &calib.inputs, QuantOptions::default());
            let input = match scenario {
                Scenario::Denoise { sigma } => {
                    add_gaussian_noise(&dataset(DatasetProfile::Set5, image, 1), sigma, 1)
                }
                Scenario::Sr4 => downsample(&dataset(DatasetProfile::Set5, image, 1), 4),
            };
            let reference = qm.forward(&input);
            let (out, report) = simulate(&qm, &input, &accel, &t);
            let bit_exact = out.as_slice() == reference.as_slice();
            // Scale the per-inference cycle count to a Full-HD frame.
            let in_pixels = (input.shape().h * input.shape().w) as f64;
            let frame_scale = 1920.0 * 1080.0 / in_pixels;
            let fps_1080 = 1.0 / (report.seconds * frame_scale);
            rows.push(vec![
                accel.name.clone(),
                scenario.label(),
                bit_exact.to_string(),
                report.cycles.to_string(),
                f2(report.utilization),
                f2(fps_1080),
                f2(report.nj_per_output_pixel),
                f2(report.memory.weight_bytes as f64 / 1024.0),
                report.weights_fit.to_string(),
            ]);
            json.push(Entry {
                accelerator: accel.name.clone(),
                scenario: scenario.label(),
                bit_exact,
                cycles: report.cycles,
                utilization: report.utilization,
                fps_equivalent_1080p: fps_1080,
                nj_per_output_pixel: report.nj_per_output_pixel,
                weight_kb: report.memory.weight_bytes as f64 / 1024.0,
                weights_fit: report.weights_fit,
            });
            assert!(bit_exact, "simulator must be bit-exact");
        }
    }
    print_table(
        "eRingCNN simulator validation",
        &[
            "accelerator",
            "scenario",
            "bit-exact",
            "cycles",
            "utilization",
            "fps @1080p-equivalent",
            "nJ/out-pixel",
            "weights (KB)",
            "fits SRAM",
        ],
        &rows,
    );
    save_json(&fl, "esim_validation", &json);
}
