//! Fig. 9: PSNR comparison of ring variants on the denoising model
//! (DnERNet-PU) and the ×4 SR model (SR4ERNet).
//!
//! Shape targets: `RI` with `fcw` is worst (no information mixing);
//! `(RI, fH)` is best and beats `(RI4, fO4)`; among `fcw` rings the
//! grank-4 `RO4` beats `RH4` and `RO4-I` beats the CirCNN-alike `RH4-I`.

use ringcnn::prelude::*;
use ringcnn_algebra::relu::Nonlinearity;
use ringcnn_bench::{f2, flags, print_table, save_json};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    scenario: String,
    algebra: String,
    psnr_db: f64,
    mults_per_pixel: f64,
}

fn algebras(standard: bool) -> Vec<(String, Algebra)> {
    let mut v = vec![
        ("RI2+fcw".into(), Algebra::with_fcw(RingKind::Ri(2))),
        ("RH2".into(), Algebra::with_fcw(RingKind::Rh(2))),
        ("C".into(), Algebra::with_fcw(RingKind::Complex)),
        ("(RI2,fH)".into(), Algebra::ri_fh(2)),
        ("RI4+fcw".into(), Algebra::with_fcw(RingKind::Ri(4))),
        ("RH4".into(), Algebra::with_fcw(RingKind::Rh(4))),
        ("RO4".into(), Algebra::with_fcw(RingKind::Ro4)),
        ("RH4-I".into(), Algebra::with_fcw(RingKind::Rh4I)),
        ("(RI4,fH)".into(), Algebra::ri_fh(4)),
    ];
    if standard {
        v.push(("H".into(), Algebra::with_fcw(RingKind::Quaternion)));
        v.push(("RH4-II".into(), Algebra::with_fcw(RingKind::Rh4II)));
        v.push(("RO4-I".into(), Algebra::with_fcw(RingKind::Ro4I)));
        v.push(("RO4-II".into(), Algebra::with_fcw(RingKind::Ro4II)));
        v.push((
            "(RI4,fO4)".into(),
            Algebra::new(RingKind::Ri(4), Nonlinearity::DirectionalO4),
        ));
    }
    v
}

fn main() {
    let fl = flags();
    let mut json = Vec::new();
    for scenario in [Scenario::Denoise { sigma: 25.0 }, Scenario::Sr4] {
        let mut rows = Vec::new();
        for (i, (label, alg)) in algebras(fl.standard).iter().enumerate() {
            let mut model = build_model(scenario, ThroughputTarget::Uhd30, alg, 100 + i as u64);
            let r = run_quality(label.clone(), &mut model, scenario, &fl.scale, 7);
            rows.push(vec![
                label.clone(),
                f2(r.psnr_db),
                format!("{:.0}", r.mults_per_pixel),
            ]);
            json.push(Entry {
                scenario: scenario.label(),
                algebra: label.clone(),
                psnr_db: r.psnr_db,
                mults_per_pixel: r.mults_per_pixel,
            });
        }
        print_table(
            &format!("Fig. 9 — PSNR of ring variants, {}", scenario.label()),
            &["algebra", "PSNR (dB)", "mults/pixel"],
            &rows,
        );
    }
    save_json(&fl, "fig09_ring_quality", &json);
}
