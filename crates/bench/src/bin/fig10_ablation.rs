//! Fig. 10: ablation between `(RI, fH)` and `RH` — the baseline `RH`,
//! `RH` re-parameterized on transformed weights `g̃`, and the
//! structure-modified model (= `(RI, fH)`), on two SR4ERNet configs.

use ringcnn::prelude::*;
use ringcnn_bench::{f2, flags, print_table, save_json};
use ringcnn_nn::models::ernet::ErNetConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    config: String,
    variant: String,
    psnr_db: f64,
}

fn main() {
    let fl = flags();
    let configs = [
        (
            "B2R2N0-w8",
            ErNetConfig {
                b: 2,
                r: 2,
                n_extra: 0,
                width: 8,
            },
        ),
        (
            "B3R2N0-w16",
            ErNetConfig {
                b: 3,
                r: 2,
                n_extra: 0,
                width: 16,
            },
        ),
    ];
    let n = 4usize;
    let mut json = Vec::new();
    for (cfg_label, cfg) in configs {
        let mut rows = Vec::new();
        for variant in Fig10Variant::all() {
            let body = fig10_model(variant, n, cfg, 31);
            let mut model = ringcnn::scenarios::with_bicubic_skip(body, 4);
            let r = run_quality(variant.label(), &mut model, Scenario::Sr4, &fl.scale, 9);
            rows.push(vec![variant.label().to_string(), f2(r.psnr_db)]);
            json.push(Entry {
                config: cfg_label.to_string(),
                variant: variant.label().to_string(),
                psnr_db: r.psnr_db,
            });
        }
        print_table(
            &format!("Fig. 10 — (RI,fH) vs RH ablation, SR4ERNet {cfg_label} (n=4)"),
            &["variant", "PSNR (dB)"],
            &rows,
        );
    }
    println!(
        "Shape target: structure modification (=(RI,fH)) improves over RH most of\n\
         the time; training on g~ alone helps only occasionally (§VI-A)."
    );
    save_json(&fl, "fig10_ablation", &json);
}
