//! Fig. 11: algebraically-sparse RingCNN vs unstructured magnitude
//! pruning at 2×/4×/8× compression (plus the dense 1× baseline), on
//! denoising and SR.
//!
//! Protocol follows the paper: pruned models are pre-trained, pruned,
//! then fine-tuned with extra epochs; the 1× baseline and RingCNNs get
//! the same extra budget for fairness.

use ringcnn::prelude::*;
use ringcnn_bench::{f2, flags, print_table, save_json};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    scenario: String,
    method: String,
    compression: f64,
    psnr_db: f64,
}

fn main() {
    let fl = flags();
    let scale = fl.scale;
    let extra = ExperimentScale {
        steps: scale.steps / 2,
        ..scale
    };
    let mut json = Vec::new();
    for scenario in [Scenario::Denoise { sigma: 25.0 }, Scenario::Sr4] {
        let mut rows = Vec::new();
        // 1× real baseline (with the fairness extra budget).
        let mut base = build_model(scenario, ThroughputTarget::Uhd30, &Algebra::real(), 11);
        let _ = train_model(&mut base, scenario, &scale, 1);
        let _ = train_model(&mut base, scenario, &extra, 2);
        let p = evaluate_model(&mut base, scenario, &scale);
        rows.push(vec!["real (1x)".into(), "1".into(), f2(p)]);
        json.push(Entry {
            scenario: scenario.label(),
            method: "real".into(),
            compression: 1.0,
            psnr_db: p,
        });
        for compression in [2.0f64, 4.0, 8.0] {
            // Unstructured pruning: pre-train, prune, fine-tune.
            let mut pruned = build_model(scenario, ThroughputTarget::Uhd30, &Algebra::real(), 11);
            let _ = train_model(&mut pruned, scenario, &scale, 1);
            let _ = global_magnitude_prune(&mut pruned, compression);
            let _ = train_model(&mut pruned, scenario, &extra, 2);
            let p_pruned = evaluate_model(&mut pruned, scenario, &scale);
            // RingCNN at the same compression: n = compression.
            let n = compression as usize;
            let mut ring = build_model(scenario, ThroughputTarget::Uhd30, &Algebra::ri_fh(n), 11);
            let _ = train_model(&mut ring, scenario, &scale, 1);
            let _ = train_model(&mut ring, scenario, &extra, 2);
            let p_ring = evaluate_model(&mut ring, scenario, &scale);
            rows.push(vec![
                format!("pruning {compression}x"),
                format!("{compression}"),
                f2(p_pruned),
            ]);
            rows.push(vec![
                format!("(RI{n},fH)"),
                format!("{compression}"),
                f2(p_ring),
            ]);
            json.push(Entry {
                scenario: scenario.label(),
                method: "pruning".into(),
                compression,
                psnr_db: p_pruned,
            });
            json.push(Entry {
                scenario: scenario.label(),
                method: format!("(RI{n},fH)"),
                compression,
                psnr_db: p_ring,
            });
        }
        print_table(
            &format!(
                "Fig. 11 — RingCNN vs unstructured pruning, {}",
                scenario.label()
            ),
            &["method", "compression", "PSNR (dB)"],
            &rows,
        );
    }
    println!("Shape target: (RI,fH) ≥ pruning at each compression; n=2 can even beat 1x.");
    save_json(&fl, "fig11_pruning", &json);
}
