//! Fig. C-1 (Appendix C): recognition study — RingCNN versus LeGR-style
//! structured filter pruning on a ResNet-mini classifier over the
//! synthetic pattern dataset (CIFAR-100 stand-in).

use ringcnn::prelude::*;
use ringcnn_bench::{f2, f3, flags, print_table, save_json};
use ringcnn_nn::models::resnet::{resnet_mini, ResNetConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    method: String,
    compute_efficiency: f64,
    accuracy: f64,
}

fn main() {
    let fl = flags();
    let (classes, per_class, size) = if fl.standard {
        (10, 24, 12)
    } else {
        (5, 10, 8)
    };
    let steps = if fl.standard { 800 } else { 250 };
    let (xs, labels) = classification_set(classes, per_class, size, 5);
    let (xs_test, labels_test) = classification_set(classes, per_class / 2, size, 9_999);
    let cfg = TrainConfig {
        steps,
        batch: 16,
        lr: 2e-3,
        decay_after: 0.7,
        seed: 3,
    };
    let rcfg = ResNetConfig {
        classes,
        ..ResNetConfig::tiny()
    };

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let record = |label: &str,
                  model: &mut Sequential,
                  base_mults: f64,
                  rows: &mut Vec<Vec<String>>,
                  json: &mut Vec<Entry>| {
        let acc = accuracy(model, &xs_test, &labels_test);
        let eff = base_mults / mults_per_input_pixel(model);
        rows.push(vec![label.to_string(), f2(eff), f3(acc)]);
        json.push(Entry {
            method: label.into(),
            compute_efficiency: eff,
            accuracy: acc,
        });
    };

    // Dense real baseline.
    let mut base = resnet_mini(&Algebra::real(), rcfg, 1, 41);
    let base_mults = mults_per_input_pixel(&mut base);
    let _ = train_classifier(&mut base, &xs, &labels, &cfg);
    record(
        "ResNet (dense)",
        &mut base,
        base_mults,
        &mut rows,
        &mut json,
    );

    // LeGR-style structured pruning at several fractions.
    for fraction in [0.25f64, 0.5, 0.75] {
        let mut m = resnet_mini(&Algebra::real(), rcfg, 1, 41);
        let _ = train_classifier(&mut m, &xs, &labels, &cfg);
        let _ = structured_filter_prune(&mut m, fraction);
        let fine = TrainConfig {
            steps: steps / 2,
            ..cfg
        };
        let _ = train_classifier(&mut m, &xs, &labels, &fine);
        record(
            &format!("LeGR-style prune {:.0}%", fraction * 100.0),
            &mut m,
            base_mults,
            &mut rows,
            &mut json,
        );
    }

    // RingCNN classifiers.
    for n in [2usize, 4] {
        let mut m = resnet_mini(&Algebra::ri_fh(n), rcfg, 1, 41);
        let _ = train_classifier(&mut m, &xs, &labels, &cfg);
        let fine = TrainConfig {
            steps: steps / 2,
            ..cfg
        };
        let _ = train_classifier(&mut m, &xs, &labels, &fine);
        record(
            &format!("RingCNN (RI{n},fH)"),
            &mut m,
            base_mults,
            &mut rows,
            &mut json,
        );
    }

    print_table(
        "Fig. C-1 — recognition: compute efficiency vs test accuracy",
        &["method", "compute efficiency (×)", "accuracy"],
        &rows,
    );
    println!(
        "Shape target: RingCNN holds accuracy at high compute efficiency better\n\
         than structured filter pruning."
    );
    save_json(&fl, "figc1_recognition", &json);
}
