//! The machine-readable perf trajectory: `BENCH_<pr>.json` schema,
//! wall-clock measurement helpers, and the CI regression gate.
//!
//! # Schema (`ringcnn-bench-json/v1`)
//!
//! ```json
//! {
//!   "schema": "ringcnn-bench-json/v1",
//!   "pr": 3,
//!   "threads_available": 4,
//!   "calibration_id": "calibration/serial/scalar",
//!   "entries": [
//!     { "id": "conv3x3_64ch_32px/rh4/transform/t4",
//!       "group": "conv_backend", "ring": "rh4",
//!       "backend": "transform", "threads": 4, "ms": 1.43 }
//!   ]
//! }
//! ```
//!
//! Entry ids are stable `workload/ring/backend/t<threads>` paths; a new
//! PR may add ids but must keep existing ones so the trajectory stays
//! comparable. `BENCH_<pr>.json` files are committed at the repo root,
//! one per PR that touches a hot path.
//!
//! # Gate semantics
//!
//! Absolute milliseconds are not comparable across machines (the
//! committed baseline may come from a different host than CI) or even
//! across the per-thread-count child processes of one `bench_json` run
//! (load shifts between them), so the gate compares
//! **calibration-normalized** times: every entry is divided by the
//! [`calibration_workload`] entry measured *in the same child process*
//! (`calibration_id` is the workload prefix; the `t<threads>` suffix
//! selects the per-process divisor). The calibration workload is serial
//! by construction, so normalization cancels machine speed and load but
//! not the parallelism under test. A tracked path fails when its
//! normalized time grows by more than `tolerance` (default 20%) over
//! the newest committed baseline. With no baseline on disk the gate
//! skips cleanly (exit 0) — the bootstrap path for the first benched
//! PR.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Current schema identifier.
pub const SCHEMA: &str = "ringcnn-bench-json/v1";

/// Default regression tolerance (fraction of the baseline).
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// One measured hot path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable id: `workload/ring/backend/t<threads>`.
    pub id: String,
    /// Workload family (`conv_backend`, `tiled_inference`, `batch`).
    pub group: String,
    /// Ring label (`real`, `ri4`, `rh4`, `rh4i`, …).
    pub ring: String,
    /// Backend label (`naive`, `im2col`, `transform`, `tiled`, `whole`).
    pub backend: String,
    /// Pool size the measurement ran with.
    pub threads: usize,
    /// Best-of-N wall-clock milliseconds per iteration ([`measure_ms`]).
    pub ms: f64,
}

/// A full bench report (`BENCH_<pr>.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// PR index this report snapshots.
    pub pr: usize,
    /// `available_parallelism` of the measuring host.
    pub threads_available: usize,
    /// Workload prefix of the per-process calibration entries
    /// (`<prefix>/t<threads>`) used to normalize away machine speed.
    pub calibration_id: String,
    /// The measurements.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Looks up an entry by id.
    pub fn entry(&self, id: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Calibration-normalized time of an entry (`ms / calibration ms`),
    /// the machine-independent quantity the gate compares.
    ///
    /// `calibration_id` names a workload *prefix*; the divisor is the
    /// calibration entry measured **in the same child process** (same
    /// `t<threads>` suffix) as the entry, so per-process machine load
    /// cancels. The calibration workload itself must be serial by
    /// construction, so normalizing does not cancel the parallelism the
    /// multi-thread entries are tracking.
    pub fn normalized(&self, id: &str) -> Option<f64> {
        let entry = self.entry(id)?;
        let calib = self
            .entry(&format!("{}/t{}", self.calibration_id, entry.threads))?
            .ms;
        if calib <= 0.0 {
            return None;
        }
        Some(entry.ms / calib)
    }

    /// Whether every thread count in the report has its calibration
    /// entry (the precondition for [`Self::normalized`]).
    pub fn has_calibration(&self) -> bool {
        self.entries.iter().all(|e| {
            self.entry(&format!("{}/t{}", self.calibration_id, e.threads))
                .is_some()
        })
    }
}

/// A serial-by-construction calibration workload: a scalar FMA sweep
/// that never touches the thread pool, so its time tracks per-process
/// machine speed (and contention) without tracking pool size.
pub fn calibration_workload() -> f32 {
    let mut buf = vec![0.0f32; 1 << 16];
    for (i, v) in buf.iter_mut().enumerate() {
        *v = (i as f32).sin();
    }
    let mut acc = 1.0f32;
    for _ in 0..64 {
        for v in &buf {
            acc = acc.mul_add(0.999_9, *v);
        }
    }
    std::hint::black_box(acc)
}

/// Best-of-N wall-clock milliseconds of `f` (after one untimed warmup
/// run): at least `iters` samples *and* at least [`MIN_MEASURE_MS`] of
/// total sampling, whichever takes longer (capped at 1000 samples).
///
/// The gate compares minima rather than medians because
/// scheduler/noisy-neighbor interference is strictly additive: the
/// fastest observed run is the most reproducible estimate of the true
/// cost. The time floor matters for sub-millisecond workloads — without
/// it their entire sample window can fall inside one interference burst
/// and even the minimum comes out inflated; spreading samples across
/// the floor lets the minimum find a clean window.
pub fn measure_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // Warmup: populate caches/plans outside the timed region.
    let started = Instant::now();
    let mut best = f64::INFINITY;
    let mut samples = 0usize;
    while samples < iters.max(1)
        || (started.elapsed().as_secs_f64() * 1e3 < MIN_MEASURE_MS && samples < 1000)
    {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        samples += 1;
    }
    best
}

/// Minimum total sampling time per measurement (see [`measure_ms`]).
pub const MIN_MEASURE_MS: f64 = 250.0;

/// What the regression gate concluded.
#[derive(Clone, Debug, Default)]
pub struct GateOutcome {
    /// `Some(reason)` when the gate did not compare anything (no
    /// baseline, missing calibration) — a clean skip, not a failure.
    pub skipped: Option<String>,
    /// Number of entry ids compared.
    pub checked: usize,
    /// Human-readable descriptions of regressions beyond tolerance.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// Whether CI should pass.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares a fresh report against a baseline (normalized times, see the
/// module docs). `None` baseline skips cleanly.
pub fn compare(fresh: &BenchReport, baseline: Option<&BenchReport>, tolerance: f64) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    let Some(base) = baseline else {
        outcome.skipped = Some("no baseline BENCH_*.json found — skipping (bootstrap)".into());
        return outcome;
    };
    if !fresh.has_calibration() {
        outcome.skipped = Some(format!(
            "fresh report lacks calibration entries `{}/t*`",
            fresh.calibration_id
        ));
        return outcome;
    }
    if !base.has_calibration() {
        outcome.skipped = Some(format!(
            "baseline lacks calibration entries `{}/t*`",
            base.calibration_id
        ));
        return outcome;
    }
    for entry in &fresh.entries {
        let (Some(fresh_norm), Some(base_norm)) =
            (fresh.normalized(&entry.id), base.normalized(&entry.id))
        else {
            continue; // Id not tracked in the baseline (new workload).
        };
        outcome.checked += 1;
        if base_norm > 0.0 && fresh_norm > base_norm * (1.0 + tolerance) {
            outcome.failures.push(format!(
                "{}: normalized {:.3} vs baseline {:.3} (+{:.0}%, tolerance {:.0}%)",
                entry.id,
                fresh_norm,
                base_norm,
                (fresh_norm / base_norm - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    // Tracked ids must never silently disappear: a regression could
    // otherwise be hidden by deleting its measurement from bench_json.
    for entry in &base.entries {
        if fresh.entry(&entry.id).is_none() {
            outcome.failures.push(format!(
                "{}: tracked in baseline (pr {}) but missing from the fresh report",
                entry.id, base.pr
            ));
        }
    }
    outcome
}

/// Finds the newest committed baseline: the `BENCH_<n>.json` with the
/// largest `n` in `dir` (excluding `exclude`, typically the fresh
/// report's own path).
pub fn find_baseline(dir: &Path, exclude: Option<&Path>) -> Option<(PathBuf, BenchReport)> {
    let mut best: Option<(usize, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let path = entry.path();
        if exclude.is_some_and(|e| same_file(e, &path)) {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|r| r.parse::<usize>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(bn, _)| n > *bn) {
            best = Some((n, path));
        }
    }
    let (_, path) = best?;
    let text = std::fs::read_to_string(&path).ok()?;
    let report: BenchReport = serde_json::from_str(&text).ok()?;
    Some((path, report))
}

/// Whether two paths name the same file (canonicalized when possible).
fn same_file(a: &Path, b: &Path) -> bool {
    match (a.canonicalize(), b.canonicalize()) {
        (Ok(ca), Ok(cb)) => ca == cb,
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pr: usize, scale: f64, transform_ms: f64) -> BenchReport {
        let cal = |threads: usize, ms: f64| BenchEntry {
            id: format!("cal/serial/scalar/t{threads}"),
            group: "calibration".into(),
            ring: "serial".into(),
            backend: "scalar".into(),
            threads,
            ms,
        };
        BenchReport {
            schema: SCHEMA.into(),
            pr,
            threads_available: 4,
            calibration_id: "cal/serial/scalar".into(),
            entries: vec![
                cal(1, 2.0 * scale),
                cal(4, 2.0 * scale),
                BenchEntry {
                    id: "conv/rh4/transform/t4".into(),
                    group: "conv_backend".into(),
                    ring: "rh4".into(),
                    backend: "transform".into(),
                    threads: 4,
                    ms: transform_ms * scale,
                },
            ],
        }
    }

    #[test]
    fn no_baseline_skips_cleanly() {
        let outcome = compare(&report(3, 1.0, 1.0), None, DEFAULT_TOLERANCE);
        assert!(outcome.passed());
        assert!(outcome.skipped.is_some());
        assert_eq!(outcome.checked, 0);
    }

    #[test]
    fn within_tolerance_passes() {
        let base = report(3, 1.0, 1.0);
        let fresh = report(4, 1.0, 1.15); // +15% < 20%
        let outcome = compare(&fresh, Some(&base), DEFAULT_TOLERANCE);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert_eq!(outcome.checked, 3);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = report(3, 1.0, 1.0);
        let fresh = report(4, 1.0, 1.5); // +50%
        let outcome = compare(&fresh, Some(&base), DEFAULT_TOLERANCE);
        assert!(!outcome.passed());
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("conv/rh4/transform/t4"));
    }

    #[test]
    fn machine_speed_is_normalized_away() {
        // A 3× slower machine scales every entry uniformly: no failure.
        let base = report(3, 1.0, 1.0);
        let fresh = report(4, 3.0, 1.0);
        let outcome = compare(&fresh, Some(&base), DEFAULT_TOLERANCE);
        assert!(outcome.passed(), "{:?}", outcome.failures);
    }

    #[test]
    fn dropped_tracked_id_fails() {
        // Removing a tracked measurement must not silently pass the gate.
        let base = report(3, 1.0, 1.0);
        let mut fresh = report(4, 1.0, 1.0);
        fresh.entries.retain(|e| e.id != "conv/rh4/transform/t4");
        let outcome = compare(&fresh, Some(&base), DEFAULT_TOLERANCE);
        assert!(!outcome.passed());
        assert!(outcome.failures[0].contains("missing from the fresh report"));
    }

    #[test]
    fn missing_calibration_skips() {
        let mut fresh = report(4, 1.0, 1.0);
        fresh.calibration_id = "nope".into();
        let outcome = compare(&fresh, Some(&report(3, 1.0, 1.0)), DEFAULT_TOLERANCE);
        assert!(outcome.passed());
        assert!(outcome.skipped.is_some());
    }

    #[test]
    fn baseline_discovery_picks_highest_index_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("ringcnn_gate_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for pr in [2usize, 3] {
            let r = report(pr, 1.0, 1.0);
            std::fs::write(
                dir.join(format!("BENCH_{pr}.json")),
                serde_json::to_string_pretty(&r).unwrap(),
            )
            .unwrap();
        }
        std::fs::write(dir.join("BENCH_bogus.json"), "{}").unwrap();
        let (path, report) = find_baseline(&dir, None).expect("baseline found");
        assert!(path.ends_with("BENCH_3.json"));
        assert_eq!(report.pr, 3);
        // Excluding the newest falls back to the previous one.
        let (path2, report2) = find_baseline(&dir, Some(&path)).expect("fallback found");
        assert!(path2.ends_with("BENCH_2.json"));
        assert_eq!(report2.pr, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn measure_ms_is_positive_and_finite() {
        let ms = measure_ms(3, || {
            std::hint::black_box((0..1000).sum::<usize>());
        });
        assert!(ms.is_finite() && ms >= 0.0);
    }
}
