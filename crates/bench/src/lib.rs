//! # ringcnn-bench
//!
//! Experiment harness regenerating every table and figure of the RingCNN
//! paper. Each `src/bin/` target reproduces one artifact (see DESIGN.md
//! §5 for the index) and prints a markdown table; `--json` additionally
//! writes machine-readable results to `results/`.
//!
//! Flags shared by all bins:
//!
//! - `--standard`: run at the larger experiment scale (CPU-minutes per
//!   model) instead of the quick default.
//! - `--json`: write `results/<bin>.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use ringcnn::prelude::ExperimentScale;
use serde::Serialize;
use std::path::PathBuf;

/// Parsed common flags.
#[derive(Clone, Debug)]
pub struct Flags {
    /// Experiment scale.
    pub scale: ExperimentScale,
    /// Whether `--standard` was passed.
    pub standard: bool,
    /// Whether to write JSON results.
    pub json: bool,
}

/// Parses the common flags from `std::env::args`.
pub fn flags() -> Flags {
    let args: Vec<String> = std::env::args().collect();
    flags_from(&args)
}

/// Parses the common flags from an explicit argument list (the first
/// element is conventionally the program name and is never a flag match).
pub fn flags_from(args: &[String]) -> Flags {
    let standard = args.iter().skip(1).any(|a| a == "--standard");
    Flags {
        scale: if standard {
            ExperimentScale::standard()
        } else {
            ExperimentScale::quick()
        },
        standard,
        json: args.iter().skip(1).any(|a| a == "--json"),
    }
}

/// Prints a markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Writes a JSON result file under `results/` when `--json` is active.
pub fn save_json<T: Serialize>(flags: &Flags, name: &str, value: &T) {
    if !flags.json {
        return;
    }
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("cannot write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("serialization failed: {e}"),
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // banker-free simple rounding
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
