//! Tests of the shared experiment-bin CLI: the `Flags` parser and an
//! end-to-end smoke run of one reproduction bin (`table1_rings`) in quick
//! mode with `--json`, validating that the emitted file is well-formed
//! JSON with the expected shape.

use ringcnn_bench::flags_from;

fn args(list: &[&str]) -> Vec<String> {
    std::iter::once("bin-name")
        .chain(list.iter().copied())
        .map(String::from)
        .collect()
}

#[test]
fn default_is_quick_scale_without_json() {
    let fl = flags_from(&args(&[]));
    assert!(!fl.standard);
    assert!(!fl.json);
    let quick = ringcnn::prelude::ExperimentScale::quick();
    assert_eq!(fl.scale.steps, quick.steps);
    assert_eq!(fl.scale.train_count, quick.train_count);
}

#[test]
fn standard_flag_selects_standard_scale() {
    let fl = flags_from(&args(&["--standard"]));
    assert!(fl.standard);
    assert!(!fl.json);
    let standard = ringcnn::prelude::ExperimentScale::standard();
    assert_eq!(fl.scale.steps, standard.steps);
    assert!(fl.scale.steps > ringcnn::prelude::ExperimentScale::quick().steps);
}

#[test]
fn json_flag_is_independent_of_scale() {
    let fl = flags_from(&args(&["--json"]));
    assert!(fl.json);
    assert!(!fl.standard);
    let both = flags_from(&args(&["--standard", "--json"]));
    assert!(both.json);
    assert!(both.standard);
}

#[test]
fn program_name_is_not_parsed_as_a_flag() {
    // A bin literally named `--json` must not switch modes on its own.
    let fl = flags_from(&["--json".to_string()]);
    assert!(!fl.json);
}

#[test]
fn table1_rings_quick_json_smoke() {
    // Run the real bin end-to-end in a scratch directory and validate the
    // JSON artifact it writes under `results/`.
    let exe = env!("CARGO_BIN_EXE_table1_rings");
    let dir = std::env::temp_dir().join(format!("ringcnn-bench-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = std::process::Command::new(exe)
        .arg("--json")
        .current_dir(&dir)
        .output()
        .expect("run table1_rings");
    assert!(
        out.status.success(),
        "table1_rings failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"), "missing table title in output");
    assert!(stdout.contains("| ring |"), "missing markdown header row");

    let path = dir.join("results").join("table1_rings.json");
    let text = std::fs::read_to_string(&path).expect("JSON artifact written");
    let value: serde::Value = serde_json::from_str(&text).expect("artifact is valid JSON");
    match &value {
        serde::Value::Array(rows) => {
            assert!(!rows.is_empty(), "Table I must have rows");
            let first = &rows[0];
            for key in ["label", "n", "dof", "grank"] {
                assert!(first.field(key).is_ok(), "row missing `{key}`: {first:?}");
            }
        }
        other => panic!("expected a JSON array of ring rows, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
