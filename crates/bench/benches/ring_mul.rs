//! Criterion micro-benchmarks for ring multiplication: direct bilinear
//! MAC vs transform-based fast algorithm, per ring variant.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ringcnn_algebra::prelude::*;
use std::time::Duration;

fn bench_ring_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_mac_f32");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for kind in [
        RingKind::Ri(1),
        RingKind::Ri(2),
        RingKind::Rh(2),
        RingKind::Complex,
        RingKind::Ri(4),
        RingKind::Rh(4),
        RingKind::Rh4I,
        RingKind::Quaternion,
    ] {
        let ring = Ring::from_kind(kind);
        let n = ring.n();
        let g: Vec<f32> = (0..n).map(|i| i as f32 * 0.3 - 0.2).collect();
        let x: Vec<f32> = (0..n).map(|i| i as f32 * -0.1 + 0.5).collect();
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut acc = vec![0.0f32; n];
                for _ in 0..64 {
                    ring.mac_f32(black_box(&g), black_box(&x), &mut acc);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_fast_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_vs_direct_f64");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for kind in [RingKind::Rh(4), RingKind::Rh4I] {
        let ring = Ring::from_kind(kind);
        let n = ring.n();
        let g: Vec<f64> = (0..n).map(|i| i as f64 * 0.3 - 0.2).collect();
        let x: Vec<f64> = (0..n).map(|i| i as f64 * -0.1 + 0.5).collect();
        group.bench_function(format!("{}-direct", kind.label()), |b| {
            b.iter(|| ring.mul_f64(black_box(&g), black_box(&x)))
        });
        group.bench_function(format!("{}-fast", kind.label()), |b| {
            b.iter(|| ring.mul_fast_f64(black_box(&g), black_box(&x)))
        });
    }
    group.finish();
}

fn bench_directional_relu(c: &mut Criterion) {
    let mut group = c.benchmark_group("directional_relu");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for n in [2usize, 4, 8] {
        let f = DirectionalRelu::fh(n);
        let data: Vec<f32> = (0..n).map(|i| i as f32 - 1.3).collect();
        group.bench_function(format!("fh_n{n}"), |b| {
            b.iter(|| {
                let mut y = data.clone();
                f.forward(&mut y);
                y
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ring_mac,
    bench_fast_vs_direct,
    bench_directional_relu
);
criterion_main!(benches);
