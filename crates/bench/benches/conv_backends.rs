//! Criterion comparison of the three convolution backends on the
//! acceptance workload: a 64-real-channel 3×3 convolution over a 32×32
//! feature map, per ring variant.
//!
//! The interesting comparison is `transform` vs `naive` on the proper
//! rings: the naive path expands each ring weight tuple onto its `n×n`
//! isomorphic block (up to `n²` real multiplications per ring MAC),
//! while the transform engine runs `m < n²` component-wise convolutions
//! in the transformed domain (eqs. (6)–(8)).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ringcnn::prelude::*;
use std::time::Duration;

// Group settings inlined via macro: naming the `BenchmarkGroup` type in
// a helper signature would not compile against the real criterion crate
// (generic over a `Measurement` parameter the shim doesn't have).
macro_rules! tune {
    ($group:expr) => {
        $group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1))
            .warm_up_time(Duration::from_millis(300))
    };
}

fn bench_ring_backends(c: &mut Criterion) {
    let x = Tensor::random_uniform(Shape4::new(1, 64, 32, 32), -1.0, 1.0, 1);
    for kind in [RingKind::Ri(4), RingKind::Rh(4), RingKind::Rh4I] {
        let mut group = c.benchmark_group(format!("conv3x3_64ch_32px_{kind}"));
        tune!(group);
        for backend in ConvBackend::all() {
            let mut layer = RingConv2d::new(Ring::from_kind(kind), 64, 64, 3, 7);
            layer.set_backend(backend);
            // Build the transform plan outside the timing loop: weight
            // pre-transformation is a one-time cost per weight set.
            let _ = layer.forward(&x, false);
            group.bench_function(backend.label(), |b| {
                b.iter(|| layer.forward(black_box(&x), false))
            });
        }
        group.finish();
    }
}

fn bench_dense_backends(c: &mut Criterion) {
    // The real field has no transform to exploit; naive vs im2col
    // isolates the patch-matrix layout win on the dense kernel.
    let x = Tensor::random_uniform(Shape4::new(1, 64, 32, 32), -1.0, 1.0, 2);
    let mut group = c.benchmark_group("conv3x3_64ch_32px_real");
    tune!(group);
    for backend in [ConvBackend::Naive, ConvBackend::Im2col] {
        let mut layer = Conv2d::new(64, 64, 3, 9);
        layer.set_backend(backend);
        group.bench_function(backend.label(), |b| {
            b.iter(|| layer.forward(black_box(&x), false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring_backends, bench_dense_backends);
criterion_main!(benches);
