//! Criterion benchmarks for the convolution layers: real conv vs ring
//! conv (RCONV) vs the fast ring convolution (FRCONV), plus the
//! quantized integer pipeline and the accelerator simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ringcnn::prelude::*;
use ringcnn_esim::prelude::simulate;
use ringcnn_hw::prelude::{AcceleratorConfig, TechParams};
use ringcnn_nn::layers::ring_conv::RingConv2d;
use std::time::Duration;

fn bench_conv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_forward_16ch_16px");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let x = Tensor::random_uniform(Shape4::new(1, 16, 16, 16), -1.0, 1.0, 1);
    for (label, alg) in [
        ("real", Algebra::real()),
        ("ri2_fh", Algebra::ri_fh(2)),
        ("ri4_fh", Algebra::ri_fh(4)),
        ("rh4_fcw", Algebra::with_fcw(RingKind::Rh(4))),
    ] {
        let mut conv = alg.conv(16, 16, 3, 7);
        group.bench_function(label, |b| b.iter(|| conv.forward(black_box(&x), false)));
    }
    group.finish();
}

fn bench_frconv_vs_rconv(c: &mut Criterion) {
    let mut group = c.benchmark_group("frconv_vs_rconv");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let ring = Ring::from_kind(RingKind::Rh4I);
    let mut layer = RingConv2d::new(ring.clone(), 16, 16, 3, 9);
    let x = Tensor::random_uniform(Shape4::new(1, 16, 16, 16), -1.0, 1.0, 2);
    group.bench_function("rconv_expanded", |b| {
        b.iter(|| layer.forward(black_box(&x), false))
    });
    let weights = layer.ring_weights().to_vec();
    let bias = layer.bias().to_vec();
    group.bench_function("frconv", |b| {
        b.iter(|| frconv_forward(&ring, black_box(&x), &weights, 4, 4, 3, &bias))
    });
    group.finish();
}

fn bench_quant_and_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant_and_sim");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let alg = Algebra::ri_fh(4);
    let mut model = ringcnn_nn::models::ernet::dn_ernet_pu(
        &alg,
        ringcnn_nn::models::ernet::ErNetConfig::tiny(),
        1,
        7,
    );
    let calib = Tensor::random_uniform(Shape4::new(1, 1, 16, 16), 0.0, 1.0, 9);
    let qm = QuantizedModel::quantize(&mut model, &calib, QuantOptions::default());
    group.bench_function("quantized_forward", |b| {
        b.iter(|| qm.forward(black_box(&calib)))
    });
    let accel = AcceleratorConfig::eringcnn_n4();
    let t = TechParams::tsmc40();
    group.bench_function("esim_simulate", |b| {
        b.iter(|| simulate(&qm, black_box(&calib), &accel, &t))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_conv_forward,
    bench_frconv_vs_rconv,
    bench_quant_and_sim
);
criterion_main!(benches);
