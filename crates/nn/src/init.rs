//! Weight initialization helpers.

/// He/Kaiming standard deviation for a layer with the given fan-in
/// (`√(2/fan_in)`), appropriate for ReLU-family activations.
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in.max(1) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::he_std;

    #[test]
    fn he_std_decreases_with_fan_in() {
        assert!(he_std(9) > he_std(36));
        assert!((he_std(2) - 1.0).abs() < 1e-6);
        // Degenerate fan-in clamps instead of dividing by zero.
        assert!(he_std(0).is_finite());
    }
}
