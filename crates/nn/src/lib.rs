//! # ringcnn-nn
//!
//! A from-scratch CPU CNN training framework purpose-built for the
//! RingCNN reproduction: layers with manual backprop, ring convolutions
//! over any [`ringcnn_algebra`] ring, the directional ReLU, optimizers,
//! a model zoo (ERNet-style, SRResNet, VDSR, FFDNet, ResNet-mini), and
//! small training loops.
//!
//! Ring convolutions train by lowering onto their isomorphic real
//! convolution (eq. (4) of the paper) and contracting gradients back to
//! ring components — exactly the Backprop strategy of §IV-B.
//!
//! ```
//! use ringcnn_nn::prelude::*;
//! use ringcnn_tensor::prelude::*;
//!
//! let alg = Algebra::ri_fh(2); // the paper's proposed (RI, fH)
//! let mut model = Sequential::new()
//!     .with(alg.conv(2, 4, 3, 1))
//!     .with_opt(alg.activation())
//!     .with(alg.conv(4, 2, 3, 2));
//! let x = Tensor::zeros(Shape4::new(1, 2, 8, 8));
//! assert_eq!(model.forward(&x, false).shape(), x.shape());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra_choice;
pub mod backend;
pub mod complexity;
pub mod init;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
pub mod runtime;
pub mod serialize;
pub mod train;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::algebra_choice::Algebra;
    pub use crate::backend::ConvBackend;
    pub use crate::complexity::{gmults_per_frame, mults_per_input_pixel};
    pub use crate::layer::Layer;
    pub use crate::layers::activation::{DirectionalReluLayer, Relu};
    pub use crate::layers::conv::{Conv2d, DepthwiseConv2d};
    pub use crate::layers::dense::{Dense, GlobalAvgPool};
    pub use crate::layers::fast_ring_conv::FastRingConv;
    pub use crate::layers::ring_conv::RingConv2d;
    pub use crate::layers::shuffle::{PixelShuffle, PixelUnshuffle};
    pub use crate::layers::structure::{Residual, Sequential};
    pub use crate::layers::upsample::{scale_conv_weights, UpsampleResidual};
    pub use crate::loss::{cross_entropy_loss, l1_loss, mse_loss};
    pub use crate::optim::{Adam, Sgd};
    pub use crate::runtime::{model_topology, tiled_forward, BatchRunner, ModelTopo, TileConfig};
    pub use crate::serialize::{
        export_model, instantiate, load_params, model_from_json, model_to_json, save_params,
        AlgebraSpec, ModelFile, ModelLoadError, ModelParams, ModelSpec,
    };
    pub use crate::train::{
        accuracy, predict, train_classifier, train_regression, TrainConfig, TrainReport,
    };
}
