//! The algebra a model is built over: a ring plus the ring non-linearity.
//!
//! This is the knob of Fig. 5 — any real-valued model structure can be
//! re-instantiated over a different `(ring, non-linearity)` pair, which is
//! exactly how RingCNN models are "converted" from real CNNs (§IV-A).

use crate::backend::ConvBackend;
use crate::layer::Layer;
use crate::layers::activation::activation_for;
use crate::layers::conv::Conv2d;
use crate::layers::ring_conv::RingConv2d;
use ringcnn_algebra::relu::Nonlinearity;
use ringcnn_algebra::ring::{Ring, RingKind};

/// A `(ring, non-linearity)` pair, e.g. the paper's proposed `(RI, fH)`.
#[derive(Clone, Debug)]
pub struct Algebra {
    ring: Ring,
    nonlinearity: Nonlinearity,
    /// Convolution backend for layers built by this algebra; `None`
    /// means automatic per-ring selection ([`ConvBackend::auto_for`]).
    backend: Option<ConvBackend>,
}

impl Algebra {
    /// Builds an algebra from a ring kind and non-linearity.
    pub fn new(kind: RingKind, nonlinearity: Nonlinearity) -> Self {
        Self {
            ring: Ring::from_kind(kind),
            nonlinearity,
            backend: None,
        }
    }

    /// Pins the convolution backend for every layer this algebra builds
    /// (overriding the automatic per-ring selection).
    #[must_use]
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The explicitly pinned backend, if any (`None` = automatic
    /// per-ring selection). Serialization records this rather than the
    /// effective choice so a saved model keeps following `auto_for`
    /// improvements.
    pub fn pinned_backend(&self) -> Option<ConvBackend> {
        self.backend
    }

    /// The effective convolution backend for this algebra's ring convs:
    /// the pinned one, or the automatic per-ring choice.
    pub fn conv_backend(&self) -> ConvBackend {
        self.backend
            .unwrap_or_else(|| ConvBackend::auto_for(&self.ring))
    }

    /// The real field with the ordinary ReLU (the baseline CNN algebra).
    pub fn real() -> Self {
        Self::new(RingKind::Ri(1), Nonlinearity::ComponentWise)
    }

    /// The paper's proposed algebra `(RI, fH)` over `n`-tuples.
    pub fn ri_fh(n: usize) -> Self {
        Self::new(RingKind::Ri(n), Nonlinearity::DirectionalH)
    }

    /// A conventional component-wise-ReLU ring (e.g. `RH`, `C`, `H`).
    pub fn with_fcw(kind: RingKind) -> Self {
        Self::new(kind, Nonlinearity::ComponentWise)
    }

    /// The ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The non-linearity.
    pub fn nonlinearity(&self) -> Nonlinearity {
        self.nonlinearity
    }

    /// Tuple dimension `n`.
    pub fn n(&self) -> usize {
        self.ring.n()
    }

    /// Short display label, e.g. `(RI4, fH)`.
    pub fn label(&self) -> String {
        format!("({}, {})", self.ring.kind(), self.nonlinearity.label())
    }

    /// Builds the convolution layer for this algebra (`Conv2d` for the
    /// real field, [`RingConv2d`] otherwise).
    ///
    /// `ci`/`co` are real channel counts. Layers whose channel counts are
    /// not multiples of `n` (the image-boundary head/tail convolutions)
    /// fall back to real-valued convolution, mirroring the accelerator
    /// whose I/O stages operate on raw image channels (§V).
    pub fn conv(&self, ci: usize, co: usize, k: usize, seed: u64) -> Box<dyn Layer> {
        let n = self.ring.n();
        let mut layer: Box<dyn Layer> = if n == 1 || ci % n != 0 || co % n != 0 {
            Box::new(Conv2d::new(ci, co, k, seed))
        } else {
            Box::new(RingConv2d::new(self.ring.clone(), ci, co, k, seed))
        };
        layer.set_conv_backend(self.conv_backend());
        layer
    }

    /// Builds the activation layer for this algebra (`None` when the
    /// non-linearity is [`Nonlinearity::None`]).
    pub fn activation(&self) -> Option<Box<dyn Layer>> {
        activation_for(&self.ring, self.nonlinearity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_algebra_builds_plain_conv() {
        let a = Algebra::real();
        let mut conv = a.conv(3, 8, 3, 1);
        assert!(conv.as_any_mut().downcast_mut::<Conv2d>().is_some());
        assert_eq!(a.label(), "(R (real), fcw)");
    }

    #[test]
    fn ring_algebra_builds_ring_conv() {
        let a = Algebra::ri_fh(4);
        let mut conv = a.conv(8, 8, 3, 1);
        assert!(conv.as_any_mut().downcast_mut::<RingConv2d>().is_some());
        assert_eq!(a.label(), "(RI4, fH)");
        assert_eq!(a.activation().unwrap().name(), "drelu[n=4]");
    }

    #[test]
    fn fcw_ring_uses_plain_relu() {
        let a = Algebra::with_fcw(RingKind::Rh(4));
        assert_eq!(a.activation().unwrap().name(), "relu");
    }

    #[test]
    fn conv_layers_inherit_auto_backend() {
        // Proper ring with m < n² → transform engine.
        let a = Algebra::with_fcw(RingKind::Rh(4));
        assert_eq!(a.conv_backend(), ConvBackend::Transform);
        let mut conv = a.conv(8, 8, 3, 1);
        let rc = conv.as_any_mut().downcast_mut::<RingConv2d>().unwrap();
        assert_eq!(rc.backend(), ConvBackend::Transform);
        // Diagonal ring → im2col.
        let a = Algebra::ri_fh(4);
        assert_eq!(a.conv_backend(), ConvBackend::Im2col);
        // Pinned backend overrides auto selection and reaches the layer.
        let a = Algebra::with_fcw(RingKind::Rh(4)).with_backend(ConvBackend::Naive);
        let mut conv = a.conv(8, 8, 3, 1);
        let rc = conv.as_any_mut().downcast_mut::<RingConv2d>().unwrap();
        assert_eq!(rc.backend(), ConvBackend::Naive);
    }
}
