//! The [`Layer`] trait: forward/backward computation with internally
//! owned parameters and gradients.
//!
//! The framework is deliberately simple — a layer caches whatever it needs
//! during `forward(…, train = true)` and consumes those caches in
//! `backward`. Optimizers visit parameters through
//! [`Layer::visit_params`], which yields `(params, grads)` slice pairs in
//! a stable order.

use crate::backend::ConvBackend;
use ringcnn_tensor::prelude::*;
use std::any::Any;

/// Mutable view of one parameter group and its gradient accumulator.
pub struct ParamGroup<'a> {
    /// Parameter values.
    pub values: &'a mut [f32],
    /// Gradient accumulator (same length).
    pub grads: &'a mut [f32],
}

/// A differentiable network layer.
///
/// Layers own their parameters and gradient buffers. `forward` with
/// `train = true` must cache activations needed by `backward`; with
/// `train = false` caches may be skipped (inference mode).
///
/// Layers are `Sync` so one prepared model can serve concurrent
/// inference forwards: [`Layer::forward_infer`] runs through `&self` and
/// is what the tile-parallel runtime (`crate::runtime`) fans out across
/// the thread pool.
pub trait Layer: Send + Sync {
    /// Short human-readable layer descriptor (e.g. `conv3x3(16->32)`).
    fn name(&self) -> String;

    /// Computes the layer output.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Inference forward through shared state: computes exactly
    /// `forward(input, false)` without mutating the layer, so many
    /// threads can run it on the same model concurrently.
    ///
    /// Layers with cached inference kernels (e.g. the transform-domain
    /// plan of a ring convolution) use the cache when present and
    /// otherwise rebuild it *locally per call* — correct but slower.
    /// Call [`Layer::prepare_inference`] once before fanning out to pay
    /// the build exactly once.
    fn forward_infer(&self, input: &Tensor) -> Tensor;

    /// Pre-builds every cached inference kernel (transform plans, weight
    /// expansions) so subsequent [`Layer::forward_infer`] calls never
    /// rebuild state. Default: nothing to prepare.
    fn prepare_inference(&mut self) {}

    /// Spatial radius this layer reads around each output pixel, in this
    /// layer's *own input* resolution (`⌊k/2⌋` for a `k×k` convolution,
    /// 0 for pointwise layers). The runtime composes these through
    /// shuffles into a whole-model receptive radius.
    fn kernel_radius(&self) -> usize {
        0
    }

    /// Consumes cached activations, accumulates parameter gradients, and
    /// returns the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a prior training-mode
    /// forward pass.
    fn backward(&mut self, dout: &Tensor) -> Tensor;

    /// Visits every `(values, grads)` parameter group in a stable order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>));

    /// Sets all gradient accumulators to zero.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |g: ParamGroup<'_>| {
            for v in g.grads.iter_mut() {
                *v = 0.0;
            }
        });
    }

    /// Number of stored real-valued parameters.
    fn num_params(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |g: ParamGroup<'_>| count += g.values.len());
        count
    }

    /// Real multiplications per output pixel when executed with the
    /// layer's fast algorithm (used for the computation-efficiency axes
    /// of Fig. 1 and Fig. C-1). Zero for parameter-free layers.
    fn mults_per_pixel(&self) -> f64 {
        0.0
    }

    /// Output channel count given the input channel count.
    fn out_channels(&self, in_channels: usize) -> usize {
        in_channels
    }

    /// Spatial scale factor of the layer (2 for ×2 pixel shuffle, ½ for
    /// unshuffle, 1 otherwise) — numerator/denominator pair.
    fn spatial_scale(&self) -> (usize, usize) {
        (1, 1)
    }

    /// Selects the convolution execution backend for inference forwards
    /// (see [`ConvBackend`]). Structural layers propagate to their
    /// children; layers without convolutions ignore it (default no-op).
    fn set_conv_backend(&mut self, _backend: ConvBackend) {}

    /// Downcasting support (used by pruning and model surgery).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        w: Vec<f32>,
        g: Vec<f32>,
    }

    impl Layer for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }
        fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
            input.clone()
        }
        fn forward_infer(&self, input: &Tensor) -> Tensor {
            input.clone()
        }
        fn backward(&mut self, dout: &Tensor) -> Tensor {
            dout.clone()
        }
        fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>)) {
            visitor(ParamGroup {
                values: &mut self.w,
                grads: &mut self.g,
            });
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn default_helpers_work() {
        let mut d = Dummy {
            w: vec![1.0; 5],
            g: vec![2.0; 5],
        };
        assert_eq!(d.num_params(), 5);
        d.zero_grads();
        assert!(d.g.iter().all(|v| *v == 0.0));
        assert_eq!(d.mults_per_pixel(), 0.0);
        assert_eq!(d.out_channels(7), 7);
    }
}
