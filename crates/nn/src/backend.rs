//! Convolution execution backends: how a (ring) convolution layer lowers
//! its forward pass onto real arithmetic.
//!
//! Every backend computes the same function (the equivalence suite in
//! `tests/conv_backends.rs` enforces agreement within `1e-4`, and the
//! dense kernels agree bit for bit); they differ only in speed:
//!
//! - [`ConvBackend::Naive`] — the six-deep reference loop of
//!   `ringcnn_tensor::conv::conv2d_forward`; ring layers first expand
//!   their weights onto the isomorphic real convolution (eq. (4)).
//! - [`ConvBackend::Im2col`] — the packed-patch-matrix kernel of
//!   `ringcnn_tensor::im2col`; same lowering, cache-friendly inner loop.
//! - [`ConvBackend::Transform`] — the transform-domain fast engine
//!   (eqs. (6)–(8)): weights are pre-transformed once (`g̃ = Tg·g`),
//!   inputs pass through `Tx`, `m` component-wise real convolutions run
//!   in the transformed domain, and `Tz` reconstructs the output —
//!   `m` real multiplications per ring MAC instead of `n²`.

use ringcnn_algebra::ring::Ring;

/// Selects the forward-convolution kernel of a layer or a whole model.
///
/// Training always flows through the naive lowering (backward reuses the
/// reference kernels); the backend governs inference
/// (`forward(…, train = false)`).
///
/// # Examples
///
/// ```
/// use ringcnn_nn::backend::ConvBackend;
/// use ringcnn_nn::prelude::*;
/// use ringcnn_algebra::ring::{Ring, RingKind};
/// use ringcnn_tensor::prelude::*;
///
/// // Automatic selection per ring: diagonal rings (identity transforms)
/// // run im2col; rings whose fast algorithm saves multiplications
/// // (m < n²) run the transform-domain engine.
/// assert_eq!(ConvBackend::auto_for(&Ring::from_kind(RingKind::Ri(4))), ConvBackend::Im2col);
/// assert_eq!(ConvBackend::auto_for(&Ring::from_kind(RingKind::Rh(4))), ConvBackend::Transform);
///
/// // Model builders inherit the algebra's backend (auto by default)…
/// let alg = Algebra::with_fcw(RingKind::Rh(4)).with_backend(ConvBackend::Naive);
/// let mut model = Sequential::new().with(alg.conv(8, 8, 3, 1));
///
/// // …and any model can be re-targeted after construction.
/// model.set_conv_backend(ConvBackend::Transform);
/// let x = Tensor::zeros(Shape4::new(1, 8, 6, 6));
/// assert_eq!(model.forward(&x, false).shape().c, 8);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ConvBackend {
    /// Reference six-deep loop nest (`conv2d_forward`).
    #[default]
    Naive,
    /// Packed patch matrix + blocked row products (`conv2d_forward_im2col`).
    Im2col,
    /// Transform-domain fast ring convolution (`FastRingConv`); dense
    /// real convolutions degenerate to [`ConvBackend::Im2col`] (the real
    /// field's transforms are identities).
    Transform,
}

impl ConvBackend {
    /// The backend a ring should run on: [`ConvBackend::Transform`] when
    /// its registered fast algorithm actually saves real multiplications
    /// (`m < n²`), [`ConvBackend::Im2col`] otherwise (the real field,
    /// diagonal `RI` rings whose transforms are identities, and rings
    /// like the quaternions whose registered algorithm is the trivial
    /// `m = n²` one).
    pub fn auto_for(ring: &Ring) -> ConvBackend {
        let n = ring.n();
        if n > 1 && !ring.is_diagonal() && ring.fast().m() < n * n {
            ConvBackend::Transform
        } else {
            ConvBackend::Im2col
        }
    }

    /// All three backends, in documentation order.
    pub fn all() -> [ConvBackend; 3] {
        [
            ConvBackend::Naive,
            ConvBackend::Im2col,
            ConvBackend::Transform,
        ]
    }

    /// Short lowercase label (bench/report identifier).
    pub fn label(&self) -> &'static str {
        match self {
            ConvBackend::Naive => "naive",
            ConvBackend::Im2col => "im2col",
            ConvBackend::Transform => "transform",
        }
    }
}

impl std::fmt::Display for ConvBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringcnn_algebra::ring::RingKind;

    #[test]
    fn auto_selection_per_ring() {
        // Diagonal / real: no transform to exploit.
        for kind in [
            RingKind::Ri(1),
            RingKind::Ri(2),
            RingKind::Ri(4),
            RingKind::Ri(8),
        ] {
            assert_eq!(
                ConvBackend::auto_for(&Ring::from_kind(kind)),
                ConvBackend::Im2col
            );
        }
        // Proper rings with m < n²: transform engine.
        for kind in [
            RingKind::Rh(2),
            RingKind::Complex,
            RingKind::Rh(4),
            RingKind::Ro4,
            RingKind::Rh4I,
            RingKind::Rh4II,
            RingKind::Ro4I,
            RingKind::Ro4II,
        ] {
            assert_eq!(
                ConvBackend::auto_for(&Ring::from_kind(kind)),
                ConvBackend::Transform,
                "{kind:?}"
            );
        }
        // Quaternions only register the trivial m = n² algorithm.
        assert_eq!(
            ConvBackend::auto_for(&Ring::from_kind(RingKind::Quaternion)),
            ConvBackend::Im2col
        );
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(ConvBackend::default(), ConvBackend::Naive);
        let labels: Vec<_> = ConvBackend::all().iter().map(|b| b.to_string()).collect();
        assert_eq!(labels, ["naive", "im2col", "transform"]);
    }
}
