//! Model-level computation accounting: real multiplications per *network
//! input pixel*, correctly weighting layers that run at rescaled
//! resolutions (after pixel shuffle/unshuffle).

use crate::layers::structure::Sequential;

/// Counts the real multiplications each input pixel of the network costs,
/// walking the top-level chain and tracking the resolution factor
/// introduced by shuffle layers.
///
/// Nested structures (residual bodies) are assumed to run at the
/// resolution of their parent position — true for every model in this
/// crate.
pub fn mults_per_input_pixel(model: &mut Sequential) -> f64 {
    let mut factor = 1.0f64; // pixels at current layer per network input pixel
    let mut total = 0.0f64;
    for layer in model.layers_mut() {
        total += layer.mults_per_pixel() * factor;
        let (num, den) = layer.spatial_scale();
        factor *= (num * num) as f64 / (den * den) as f64;
    }
    total
}

/// Giga-multiplications for a full frame of the given size (e.g. one
/// Full-HD frame), a convenient axis for the Fig. 1 tradeoff plot.
pub fn gmults_per_frame(model: &mut Sequential, width: usize, height: usize) -> f64 {
    mults_per_input_pixel(model) * (width * height) as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra_choice::Algebra;
    use crate::layers::shuffle::{PixelShuffle, PixelUnshuffle};

    #[test]
    fn unshuffle_discounts_later_layers() {
        let alg = Algebra::real();
        // conv at full res: 1→4, 3x3 = 36 mults/px.
        let mut flat = Sequential::new().with(alg.conv(1, 4, 3, 1));
        assert_eq!(mults_per_input_pixel(&mut flat), 36.0);
        // Same conv after 2x unshuffle runs on 4x fewer pixels but 4x
        // more input channels: 4·4·9/4 = 36 too.
        let mut pu = Sequential::new()
            .with(Box::new(PixelUnshuffle::new(2)))
            .with(alg.conv(4, 4, 3, 1));
        assert_eq!(mults_per_input_pixel(&mut pu), 144.0 / 4.0);
    }

    #[test]
    fn shuffle_amplifies_later_layers() {
        let alg = Algebra::real();
        let mut m = Sequential::new()
            .with(alg.conv(1, 16, 3, 1)) // 144 at 1x
            .with(Box::new(PixelShuffle::new(2)))
            .with(alg.conv(4, 1, 3, 2)); // 36 at 4x pixels
        assert_eq!(mults_per_input_pixel(&mut m), 144.0 + 36.0 * 4.0);
    }

    #[test]
    fn ring_reduces_mult_count_by_fast_m() {
        let real = &Algebra::real();
        let ring = &Algebra::ri_fh(4);
        let mut a = Sequential::new().with(real.conv(8, 8, 3, 1));
        let mut b = Sequential::new().with(ring.conv(8, 8, 3, 1));
        let ratio = mults_per_input_pixel(&mut a) / mults_per_input_pixel(&mut b);
        assert!(
            (ratio - 4.0).abs() < 1e-9,
            "RI4 gives 4x fewer mults, got {ratio}"
        );
    }

    #[test]
    fn gmults_scales_with_frame() {
        let alg = Algebra::real();
        let mut m = Sequential::new().with(alg.conv(1, 1, 3, 1));
        let g = gmults_per_frame(&mut m, 1000, 1000);
        assert!((g - 9e-3).abs() < 1e-12);
    }
}
