//! The transform-domain fast ring convolution engine — an execution plan
//! for FRCONV (eq. (12)) built once per weight set and reused across
//! forward passes.
//!
//! ```text
//! g̃ = Tg·g   (once, at plan construction)
//! x̃ = Tx·x   (once per input tuple)
//! z̃ = Σ g̃ ∘ x̃  (m component-wise real convolutions)
//! z  = Tz·z̃  (once per output tuple)
//! ```
//!
//! Each transformed component `r ∈ 0..m` is an ordinary dense real
//! convolution with `ci_t` input and `co_t` output channels, executed on
//! the im2col kernel; the transforms are plane-wise axpy passes. Total
//! cost: `m` real multiplications per ring MAC instead of the `n²` of
//! the naive isomorphic expansion — the paper's eq. (6)–(8) speedup,
//! realized on the inference hot path instead of only in the per-tuple
//! reference implementation (`ringcnn::frconv`).

use ringcnn_algebra::ring::Ring;
use ringcnn_tensor::prelude::*;

/// A ready-to-run transform-domain plan for one ring convolution layer.
///
/// Construct with [`FastRingConv::new`] from the layer's ring weights
/// (`[co_t][ci_t][ky][kx][component]` layout, as stored by
/// [`crate::layers::ring_conv::RingConv2d`]); the filter transform is
/// applied once here, so repeated [`FastRingConv::forward`] calls only
/// pay the data/reconstruction transforms and the `m` component convs.
pub struct FastRingConv {
    n: usize,
    m: usize,
    ci_t: usize,
    co_t: usize,
    k: usize,
    /// Data transform `Tx`, row-major `m × n`, as `f32`.
    tx: Vec<f32>,
    /// Reconstruction transform `Tz`, row-major `n × m`, as `f32`.
    tz: Vec<f32>,
    /// Pre-transformed weights `g̃`: one dense `co_t × ci_t × k × k`
    /// real convolution per transformed component.
    comp_weights: Vec<ConvWeights>,
    /// Bias per real output channel (`co_t·n` entries).
    bias: Vec<f32>,
}

impl FastRingConv {
    /// Builds the plan: applies `Tg` to every weight tuple (in `f64`,
    /// once) and captures `Tx`/`Tz` as `f32` coefficient tables.
    ///
    /// # Panics
    ///
    /// Panics if `ring_weights.len() != co_t·ci_t·k²·n` or
    /// `bias.len() != co_t·n`.
    pub fn new(
        ring: &Ring,
        ring_weights: &[f32],
        ci_t: usize,
        co_t: usize,
        k: usize,
        bias: &[f32],
    ) -> Self {
        let n = ring.n();
        let m = ring.fast().m();
        assert_eq!(
            ring_weights.len(),
            co_t * ci_t * k * k * n,
            "ring weight length mismatch"
        );
        assert_eq!(bias.len(), co_t * n, "bias length mismatch");
        let (tgm, txm, tzm) = (ring.fast().tg(), ring.fast().tx(), ring.fast().tz());

        let mut tx = vec![0.0f32; m * n];
        for r in 0..m {
            for l in 0..n {
                tx[r * n + l] = txm[(r, l)] as f32;
            }
        }
        let mut tz = vec![0.0f32; n * m];
        for l in 0..n {
            for r in 0..m {
                tz[l * m + r] = tzm[(l, r)] as f32;
            }
        }

        // Filter transform: the weight layout enumerates (co_t, ci_t, ky,
        // kx) in exactly the ConvWeights order, so tap index == flat
        // ConvWeights index.
        let taps = co_t * ci_t * k * k;
        let mut comp_weights = vec![ConvWeights::zeros(co_t, ci_t, k); m];
        for tap in 0..taps {
            let g = &ring_weights[tap * n..(tap + 1) * n];
            for (r, cw) in comp_weights.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for (l, gv) in g.iter().enumerate() {
                    acc += tgm[(r, l)] * f64::from(*gv);
                }
                cw.data[tap] = acc as f32;
            }
        }

        Self {
            n,
            m,
            ci_t,
            co_t,
            k,
            tx,
            tz,
            comp_weights,
            bias: bias.to_vec(),
        }
    }

    /// Number of real multiplications per ring MAC (`m`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Real multiplications per output pixel (`co_t·ci_t·k²·m`) — the
    /// quantity the fast algorithm minimizes, cf. eq. (12).
    pub fn mults_per_pixel(&self) -> f64 {
        (self.co_t * self.ci_t * self.k * self.k * self.m) as f64
    }

    /// Runs the plan on an `[N, ci_t·n, H, W]` input.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count is not `ci_t·n`.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let s = input.shape();
        assert_eq!(s.c, self.ci_t * self.n, "input channels mismatch");
        let mut out = Tensor::zeros(s.with_channels(self.co_t * self.n));

        for r in 0..self.m {
            // Data transform: component r of x̃ for every input tuple,
            // as plane-wise axpy passes (coefficients are mostly 0/±1).
            let mut xt = Tensor::zeros(Shape4::new(s.n, self.ci_t, s.h, s.w));
            for b in 0..s.n {
                for ct in 0..self.ci_t {
                    let dst = xt.plane_mut(b, ct);
                    for l in 0..self.n {
                        let c = self.tx[r * self.n + l];
                        if c == 0.0 {
                            continue;
                        }
                        let src = input.plane(b, ct * self.n + l);
                        if c == 1.0 {
                            for (d, v) in dst.iter_mut().zip(src) {
                                *d += *v;
                            }
                        } else {
                            for (d, v) in dst.iter_mut().zip(src) {
                                *d += c * *v;
                            }
                        }
                    }
                }
            }

            // One component-wise real convolution in the transformed
            // domain, on the cache-friendly im2col kernel.
            let zt = conv2d_forward_im2col(&xt, &self.comp_weights[r], &[]);

            // Reconstruction: scatter component r of z̃ through Tz.
            for b in 0..s.n {
                for cot in 0..self.co_t {
                    let src = zt.plane(b, cot);
                    for l in 0..self.n {
                        let c = self.tz[l * self.m + r];
                        if c == 0.0 {
                            continue;
                        }
                        let dst = out.plane_mut(b, cot * self.n + l);
                        for (d, v) in dst.iter_mut().zip(src) {
                            *d += c * *v;
                        }
                    }
                }
            }
        }

        // Bias, once per real output channel.
        for b in 0..s.n {
            for (c, bv) in self.bias.iter().enumerate() {
                if *bv != 0.0 {
                    for v in out.plane_mut(b, c) {
                        *v += bv;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::layers::ring_conv::RingConv2d;
    use ringcnn_algebra::ring::RingKind;

    #[test]
    fn plan_matches_naive_lowering() {
        for kind in [
            RingKind::Rh(2),
            RingKind::Complex,
            RingKind::Rh(4),
            RingKind::Rh4I,
        ] {
            let ring = Ring::from_kind(kind);
            let n = ring.n();
            let mut layer = RingConv2d::new(ring.clone(), 2 * n, 2 * n, 3, 17);
            for (i, b) in layer.bias_mut().iter_mut().enumerate() {
                *b = 0.03 * i as f32 - 0.05;
            }
            let x = Tensor::random_uniform(Shape4::new(2, 2 * n, 5, 4), -1.0, 1.0, 18);
            let reference = layer.forward(&x, false);
            let plan = FastRingConv::new(&ring, layer.ring_weights(), 2, 2, 3, layer.bias());
            let fast = plan.forward(&x);
            let mse = reference.mse(&fast);
            assert!(mse < 1e-10, "{kind:?}: plan deviates, mse {mse}");
        }
    }

    #[test]
    fn mult_count_uses_fast_algorithm() {
        let ring = Ring::from_kind(RingKind::Rh(4));
        let plan = FastRingConv::new(&ring, &vec![0.0; 2 * 2 * 9 * 4], 2, 2, 3, &[0.0; 8]);
        assert_eq!(plan.m(), 4);
        assert_eq!(plan.mults_per_pixel(), 144.0);
    }

    #[test]
    #[should_panic(expected = "ring weight length mismatch")]
    fn rejects_bad_weight_length() {
        let ring = Ring::from_kind(RingKind::Rh(2));
        let _ = FastRingConv::new(&ring, &[0.0; 7], 1, 1, 1, &[0.0; 2]);
    }
}
