//! Activation layers: component-wise ReLU and the tuple-wise directional
//! ReLU (`fH` / `fO4`) applied across channel groups.

use crate::layer::{Layer, ParamGroup};
use ringcnn_algebra::relu::{DirectionalRelu, Nonlinearity};
use ringcnn_algebra::ring::Ring;

use ringcnn_tensor::tensor::Tensor as T;

/// Plain component-wise ReLU on every element (real networks and the
/// `fcw` rings).
#[derive(Default)]
pub struct Relu {
    cached_input: Option<T>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { cached_input: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> String {
        "relu".into()
    }

    fn forward(&mut self, input: &T, train: bool) -> T {
        if train {
            self.cached_input = Some(input.clone());
        }
        self.forward_infer(input)
    }

    fn forward_infer(&self, input: &T) -> T {
        let mut out = input.clone();
        out.map_inplace(|v| v.max(0.0));
        out
    }

    fn backward(&mut self, dout: &T) -> T {
        let input = self
            .cached_input
            .take()
            .expect("backward without training forward");
        let mut d = dout.clone();
        for (g, x) in d.as_mut_slice().iter_mut().zip(input.as_slice()) {
            if *x <= 0.0 {
                *g = 0.0;
            }
        }
        d
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(ParamGroup<'_>)) {}

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Tuple-wise directional ReLU: channels are grouped into `n`-tuples and
/// `f(y) = U·fcw(V·y)` is applied to each tuple at every pixel (§III-E).
pub struct DirectionalReluLayer {
    f: DirectionalRelu,
    n: usize,
    cached_hidden: Option<T>,
}

impl DirectionalReluLayer {
    /// Creates a directional ReLU from an explicit instance.
    pub fn new(f: DirectionalRelu) -> Self {
        let n = f.n();
        Self {
            f,
            n,
            cached_hidden: None,
        }
    }

    /// `fH` over `n`-tuples.
    pub fn fh(n: usize) -> Self {
        Self::new(DirectionalRelu::fh(n))
    }

    /// `fO4` over 4-tuples.
    pub fn fo4() -> Self {
        Self::new(DirectionalRelu::fo4())
    }

    /// Tuple length.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Layer for DirectionalReluLayer {
    fn name(&self) -> String {
        format!("drelu[n={}]", self.n)
    }

    fn forward(&mut self, input: &T, train: bool) -> T {
        if !train {
            return self.forward_infer(input);
        }
        let s = input.shape();
        assert_eq!(
            s.c % self.n,
            0,
            "channels {} not a multiple of tuple size {}",
            s.c,
            self.n
        );
        let tuples = s.c / self.n;
        let plane = s.plane();
        let mut out = input.clone();
        let mut hidden = T::zeros(s);
        let mut y = vec![0.0f32; self.n];
        let mut h = vec![0.0f32; self.n];
        for b in 0..s.n {
            for t in 0..tuples {
                for p in 0..plane {
                    for l in 0..self.n {
                        y[l] = out.plane(b, t * self.n + l)[p];
                    }
                    self.f.forward_with_hidden(&mut y, &mut h);
                    for l in 0..self.n {
                        hidden.plane_mut(b, t * self.n + l)[p] = h[l];
                        out.plane_mut(b, t * self.n + l)[p] = y[l];
                    }
                }
            }
        }
        self.cached_hidden = Some(hidden);
        out
    }

    fn forward_infer(&self, input: &T) -> T {
        let s = input.shape();
        assert_eq!(
            s.c % self.n,
            0,
            "channels {} not a multiple of tuple size {}",
            s.c,
            self.n
        );
        let tuples = s.c / self.n;
        let plane = s.plane();
        let mut out = input.clone();
        let mut y = vec![0.0f32; self.n];
        for b in 0..s.n {
            for t in 0..tuples {
                for p in 0..plane {
                    for l in 0..self.n {
                        y[l] = out.plane(b, t * self.n + l)[p];
                    }
                    self.f.forward(&mut y);
                    for l in 0..self.n {
                        out.plane_mut(b, t * self.n + l)[p] = y[l];
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, dout: &T) -> T {
        let hidden = self
            .cached_hidden
            .take()
            .expect("backward without training forward");
        let s = dout.shape();
        let tuples = s.c / self.n;
        let plane = s.plane();
        let mut din = dout.clone();
        let mut d = vec![0.0f32; self.n];
        let mut h = vec![0.0f32; self.n];
        for b in 0..s.n {
            for t in 0..tuples {
                for p in 0..plane {
                    for l in 0..self.n {
                        d[l] = din.plane(b, t * self.n + l)[p];
                        h[l] = hidden.plane(b, t * self.n + l)[p];
                    }
                    self.f.backward(&h, &mut d);
                    for l in 0..self.n {
                        din.plane_mut(b, t * self.n + l)[p] = d[l];
                    }
                }
            }
        }
        din
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(ParamGroup<'_>)) {}

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Builds the activation layer matching a ring + non-linearity choice
/// (the `f` box of Fig. 5(b)).
///
/// # Panics
///
/// Panics when `DirectionalO4` is requested for `n ≠ 4`.
pub fn activation_for(ring: &Ring, nl: Nonlinearity) -> Option<Box<dyn Layer>> {
    match nl {
        Nonlinearity::None => None,
        Nonlinearity::ComponentWise => Some(Box::new(Relu::new())),
        Nonlinearity::DirectionalH => Some(Box::new(DirectionalReluLayer::fh(ring.n()))),
        Nonlinearity::DirectionalO4 => {
            assert_eq!(ring.n(), 4, "fO4 requires 4-tuples");
            Some(Box::new(DirectionalReluLayer::fo4()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringcnn_algebra::ring::RingKind;
    use ringcnn_tensor::shape::Shape4;

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new();
        let x = T::from_vec(Shape4::new(1, 1, 1, 4), vec![-1.0, 2.0, -3.0, 4.0]);
        let y = r.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let d = r.backward(&T::full(Shape4::new(1, 1, 1, 4), 1.0));
        assert_eq!(d.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn drelu_mixes_channels_within_tuple_only() {
        let mut l = DirectionalReluLayer::fh(2);
        let x = T::from_vec(
            Shape4::new(1, 4, 1, 1),
            vec![1.0, -3.0, /* tuple 2 */ 0.5, 0.25],
        );
        let y = l.forward(&x, false);
        // Tuple 0: H(1,-3) = (-2, 4) → (0,4) → H → (4,-4)
        assert_eq!(y.at(0, 0, 0, 0), 4.0);
        assert_eq!(y.at(0, 1, 0, 0), -4.0);
        // Tuple 1: H(0.5,0.25) = (0.75, 0.25) → same → H → (1.0, 0.5)
        assert!((y.at(0, 2, 0, 0) - 1.0).abs() < 1e-6);
        assert!((y.at(0, 3, 0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn drelu_gradcheck() {
        let mut l = DirectionalReluLayer::fh(4);
        let x = T::random_uniform(Shape4::new(1, 4, 2, 2), -1.0, 1.0, 31);
        let dout = T::random_uniform(Shape4::new(1, 4, 2, 2), -1.0, 1.0, 32);
        let _ = l.forward(&x, true);
        let dx = l.backward(&dout);
        let eps = 1e-3f32;
        for (c, y0, x0) in [(0usize, 0usize, 1usize), (2, 1, 0), (3, 1, 1)] {
            let mut xp = x.clone();
            *xp.at_mut(0, c, y0, x0) += eps;
            let mut xm = x.clone();
            *xm.at_mut(0, c, y0, x0) -= eps;
            let f = |t: &T, l: &mut DirectionalReluLayer| -> f32 {
                l.forward(t, false)
                    .as_slice()
                    .iter()
                    .zip(dout.as_slice())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let fd = (f(&xp, &mut l) - f(&xm, &mut l)) / (2.0 * eps);
            let an = dx.at(0, c, y0, x0);
            assert!((fd - an).abs() < 2e-2, "({c},{y0},{x0}): fd {fd} vs {an}");
        }
    }

    #[test]
    fn activation_factory() {
        let ring = Ring::from_kind(RingKind::Ri(4));
        assert!(activation_for(&ring, Nonlinearity::None).is_none());
        assert_eq!(
            activation_for(&ring, Nonlinearity::ComponentWise)
                .unwrap()
                .name(),
            "relu"
        );
        assert_eq!(
            activation_for(&ring, Nonlinearity::DirectionalH)
                .unwrap()
                .name(),
            "drelu[n=4]"
        );
    }
}
