//! Bicubic global-skip wrapper for super-resolution models:
//! `out = body(x) + bicubic↑(x)`.
//!
//! The network then only learns the residual above classical
//! interpolation, which makes small-scale training start from the
//! bicubic baseline instead of random output.

use crate::backend::ConvBackend;
use crate::layer::{Layer, ParamGroup};
use crate::layers::structure::Sequential;
use ringcnn_imaging::degrade::{resize_bicubic_adjoint, upsample};
use ringcnn_tensor::tensor::Tensor;

/// `body(x) + bicubic_upsample(x, factor)`.
pub struct UpsampleResidual {
    body: Sequential,
    factor: usize,
    cached_in_hw: Option<(usize, usize)>,
}

impl UpsampleResidual {
    /// Wraps `body` (which must scale resolution by `factor`).
    pub fn new(body: Sequential, factor: usize) -> Self {
        Self {
            body,
            factor,
            cached_in_hw: None,
        }
    }

    /// The wrapped body.
    pub fn body_mut(&mut self) -> &mut Sequential {
        &mut self.body
    }

    /// Immutable body access (for the inference runtime's model walk).
    pub fn body(&self) -> &Sequential {
        &self.body
    }

    /// The upsampling factor.
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl Layer for UpsampleResidual {
    fn name(&self) -> String {
        format!("upsample_residual(x{})", self.factor)
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            let s = input.shape();
            self.cached_in_hw = Some((s.h, s.w));
        }
        let mut out = self.body.forward(input, train);
        out.add_assign(&upsample(input, self.factor));
        out
    }

    fn forward_infer(&self, input: &Tensor) -> Tensor {
        let mut out = self.body.forward_infer(input);
        out.add_assign(&upsample(input, self.factor));
        out
    }

    fn prepare_inference(&mut self) {
        self.body.prepare_inference();
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let (h, w) = self
            .cached_in_hw
            .take()
            .expect("backward without training forward");
        let mut din = self.body.backward(dout);
        din.add_assign(&resize_bicubic_adjoint(dout, h, w));
        din
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>)) {
        self.body.visit_params(visitor);
    }

    fn mults_per_pixel(&self) -> f64 {
        self.body.mults_per_pixel()
    }

    fn out_channels(&self, in_channels: usize) -> usize {
        self.body.out_channels(in_channels)
    }

    fn spatial_scale(&self) -> (usize, usize) {
        (self.factor, 1)
    }

    fn set_conv_backend(&mut self, backend: ConvBackend) {
        self.body.set_conv_backend(backend);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Scales the weights of a conv layer (real or ring) in place — used to
/// give residual branches a near-identity initialization.
pub fn scale_conv_weights(layer: &mut dyn Layer, factor: f32) {
    if let Some(c) = layer
        .as_any_mut()
        .downcast_mut::<crate::layers::conv::Conv2d>()
    {
        for w in c.weights_mut().data.iter_mut() {
            *w *= factor;
        }
    } else if let Some(rc) = layer
        .as_any_mut()
        .downcast_mut::<crate::layers::ring_conv::RingConv2d>()
    {
        for w in rc.ring_weights_mut().iter_mut() {
            *w *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra_choice::Algebra;
    use crate::layers::shuffle::PixelShuffle;
    use ringcnn_tensor::prelude::*;

    fn up4_body() -> Sequential {
        let alg = Algebra::real();
        Sequential::new()
            .with(alg.conv(1, 16, 3, 1))
            .with(Box::new(PixelShuffle::new(4)))
    }

    #[test]
    fn output_includes_bicubic_skip() {
        let mut m = UpsampleResidual::new(up4_body(), 4);
        let x = Tensor::random_uniform(Shape4::new(1, 1, 4, 4), 0.0, 1.0, 1);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), Shape4::new(1, 1, 16, 16));
        // Zero body → output is exactly bicubic.
        let mut zero_body = up4_body();
        zero_body.for_each_layer_mut(&mut |l| scale_conv_weights(l, 0.0));
        let mut m0 = UpsampleResidual::new(zero_body, 4);
        let y0 = m0.forward(&x, false);
        assert!(y0.mse(&upsample(&x, 4)) < 1e-12);
    }

    #[test]
    fn backward_gradcheck_through_skip() {
        let mut m = UpsampleResidual::new(up4_body(), 4);
        let x = Tensor::random_uniform(Shape4::new(1, 1, 4, 4), 0.0, 1.0, 2);
        let dout = Tensor::random_uniform(Shape4::new(1, 1, 16, 16), -1.0, 1.0, 3);
        let _ = m.forward(&x, true);
        let dx = m.backward(&dout);
        let eps = 1e-2f32;
        let mut xp = x.clone();
        *xp.at_mut(0, 0, 1, 2) += eps;
        let mut xm = x.clone();
        *xm.at_mut(0, 0, 1, 2) -= eps;
        let f = |t: &Tensor, m: &mut UpsampleResidual| -> f32 {
            m.forward(t, false)
                .as_slice()
                .iter()
                .zip(dout.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let fd = (f(&xp, &mut m) - f(&xm, &mut m)) / (2.0 * eps);
        assert!(
            (fd - dx.at(0, 0, 1, 2)).abs() < 3e-2,
            "fd {fd} vs {}",
            dx.at(0, 0, 1, 2)
        );
    }

    #[test]
    fn scale_conv_weights_hits_ring_convs() {
        let alg = Algebra::ri_fh(2);
        let mut conv = alg.conv(2, 2, 3, 4);
        scale_conv_weights(conv.as_mut(), 0.0);
        let rc = conv
            .as_any_mut()
            .downcast_mut::<crate::layers::ring_conv::RingConv2d>()
            .unwrap();
        assert!(rc.ring_weights().iter().all(|w| *w == 0.0));
    }
}
