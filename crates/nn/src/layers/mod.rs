//! Layer implementations.

pub mod activation;
pub mod conv;
pub mod dense;
pub mod fast_ring_conv;
pub mod ring_conv;
pub mod shuffle;
pub mod structure;
pub mod upsample;
