//! Classification-head layers: global average pooling and a dense
//! (fully-connected) layer, used by the ResNet-style recognition models
//! of Appendix C.

use crate::init::he_std;
use crate::layer::{Layer, ParamGroup};
use ringcnn_tensor::prelude::*;
use ringcnn_tensor::tensor::Tensor as T;

/// Global average pooling: `[N, C, H, W] → [N, C, 1, 1]`.
#[derive(Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<Shape4>,
}

impl GlobalAvgPool {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        Self { cached_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> String {
        "global_avg_pool".into()
    }

    fn forward(&mut self, input: &T, train: bool) -> T {
        if train {
            self.cached_shape = Some(input.shape());
        }
        self.forward_infer(input)
    }

    fn forward_infer(&self, input: &T) -> T {
        let s = input.shape();
        let mut out = T::zeros(Shape4::new(s.n, s.c, 1, 1));
        let inv = 1.0 / s.plane() as f32;
        for b in 0..s.n {
            for c in 0..s.c {
                *out.at_mut(b, c, 0, 0) = input.plane(b, c).iter().sum::<f32>() * inv;
            }
        }
        out
    }

    fn backward(&mut self, dout: &T) -> T {
        let s = self
            .cached_shape
            .take()
            .expect("backward without training forward");
        let mut din = T::zeros(s);
        let inv = 1.0 / s.plane() as f32;
        for b in 0..s.n {
            for c in 0..s.c {
                let g = dout.at(b, c, 0, 0) * inv;
                for v in din.plane_mut(b, c) {
                    *v = g;
                }
            }
        }
        din
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(ParamGroup<'_>)) {}

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Fully-connected layer on `[N, C, 1, 1]` tensors.
pub struct Dense {
    ci: usize,
    co: usize,
    weights: Vec<f32>,
    dweights: Vec<f32>,
    bias: Vec<f32>,
    dbias: Vec<f32>,
    cached_input: Option<T>,
}

impl Dense {
    /// He-initialized dense layer.
    pub fn new(ci: usize, co: usize, seed: u64) -> Self {
        let std = he_std(ci);
        let init = T::random_normal(Shape4::new(1, 1, 1, ci * co), std, seed);
        Self {
            ci,
            co,
            weights: init.as_slice().to_vec(),
            dweights: vec![0.0; ci * co],
            bias: vec![0.0; co],
            dbias: vec![0.0; co],
            cached_input: None,
        }
    }
}

impl Layer for Dense {
    fn name(&self) -> String {
        format!("dense({}->{})", self.ci, self.co)
    }

    fn forward(&mut self, input: &T, train: bool) -> T {
        if train {
            self.cached_input = Some(input.clone());
        }
        self.forward_infer(input)
    }

    fn forward_infer(&self, input: &T) -> T {
        let s = input.shape();
        assert_eq!(
            (s.c, s.h, s.w),
            (self.ci, 1, 1),
            "dense expects [N,{},1,1]",
            self.ci
        );
        let mut out = T::zeros(Shape4::new(s.n, self.co, 1, 1));
        for b in 0..s.n {
            for o in 0..self.co {
                let mut acc = self.bias[o];
                for i in 0..self.ci {
                    acc += self.weights[o * self.ci + i] * input.at(b, i, 0, 0);
                }
                *out.at_mut(b, o, 0, 0) = acc;
            }
        }
        out
    }

    fn backward(&mut self, dout: &T) -> T {
        let input = self
            .cached_input
            .take()
            .expect("backward without training forward");
        let s = input.shape();
        let mut din = T::zeros(s);
        for b in 0..s.n {
            for o in 0..self.co {
                let g = dout.at(b, o, 0, 0);
                self.dbias[o] += g;
                for i in 0..self.ci {
                    self.dweights[o * self.ci + i] += g * input.at(b, i, 0, 0);
                    *din.at_mut(b, i, 0, 0) += g * self.weights[o * self.ci + i];
                }
            }
        }
        din
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>)) {
        visitor(ParamGroup {
            values: &mut self.weights,
            grads: &mut self.dweights,
        });
        visitor(ParamGroup {
            values: &mut self.bias,
            grads: &mut self.dbias,
        });
    }

    fn mults_per_pixel(&self) -> f64 {
        (self.ci * self.co) as f64
    }

    fn out_channels(&self, in_channels: usize) -> usize {
        assert_eq!(in_channels, self.ci);
        self.co
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_averages_planes() {
        let mut p = GlobalAvgPool::new();
        let x = T::from_vec(
            Shape4::new(1, 2, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        );
        let y = p.forward(&x, true);
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
        let d = p.backward(&T::from_vec(Shape4::new(1, 2, 1, 1), vec![4.0, 8.0]));
        assert_eq!(d.plane(0, 0), &[1.0; 4]);
        assert_eq!(d.plane(0, 1), &[2.0; 4]);
    }

    #[test]
    fn dense_forward_and_gradcheck() {
        let mut l = Dense::new(3, 2, 13);
        let x = T::random_uniform(Shape4::new(2, 3, 1, 1), -1.0, 1.0, 14);
        let dout = T::random_uniform(Shape4::new(2, 2, 1, 1), -1.0, 1.0, 15);
        let _ = l.forward(&x, true);
        let dx = l.backward(&dout);
        let eps = 1e-3f32;
        let mut xp = x.clone();
        *xp.at_mut(1, 2, 0, 0) += eps;
        let mut xm = x.clone();
        *xm.at_mut(1, 2, 0, 0) -= eps;
        let f = |t: &T, l: &mut Dense| -> f32 {
            l.forward(t, false)
                .as_slice()
                .iter()
                .zip(dout.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let fd = (f(&xp, &mut l) - f(&xm, &mut l)) / (2.0 * eps);
        assert!((fd - dx.at(1, 2, 0, 0)).abs() < 1e-2);
    }
}
