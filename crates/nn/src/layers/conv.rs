//! Real-valued convolution layer (the baseline arithmetic of Fig. 5(a)).

use crate::backend::ConvBackend;
use crate::init::he_std;
use crate::layer::{Layer, ParamGroup};
use ringcnn_tensor::prelude::*;
use ringcnn_tensor::tensor::Tensor as T;

/// `K×K` real convolution with bias and zero padding ("same" output size).
///
/// # Examples
///
/// ```
/// use ringcnn_nn::layers::conv::Conv2d;
/// use ringcnn_nn::layer::Layer;
/// use ringcnn_tensor::prelude::*;
/// let mut conv = Conv2d::new(3, 8, 3, 1);
/// let x = Tensor::zeros(Shape4::new(1, 3, 6, 6));
/// let y = conv.forward(&x, false);
/// assert_eq!(y.shape().c, 8);
/// ```
pub struct Conv2d {
    weights: ConvWeights,
    bias: Vec<f32>,
    dweights: ConvWeights,
    dbias: Vec<f32>,
    cached_input: Option<T>,
    /// Mask for pruned weights (1 = keep); `None` when dense.
    mask: Option<Vec<f32>>,
    /// Forward kernel selection; both kernels are bit-for-bit identical.
    backend: ConvBackend,
}

impl Conv2d {
    /// Creates a He-initialized convolution (`seed` controls the init).
    pub fn new(ci: usize, co: usize, k: usize, seed: u64) -> Self {
        let std = he_std(ci * k * k);
        let init = T::random_normal(Shape4::new(1, 1, 1, co * ci * k * k), std, seed);
        let mut weights = ConvWeights::zeros(co, ci, k);
        weights.data.copy_from_slice(init.as_slice());
        Self {
            dweights: ConvWeights::zeros(co, ci, k),
            dbias: vec![0.0; co],
            bias: vec![0.0; co],
            weights,
            cached_input: None,
            mask: None,
            backend: ConvBackend::Naive,
        }
    }

    /// The active convolution backend.
    pub fn backend(&self) -> ConvBackend {
        self.backend
    }

    /// Selects the forward kernel ([`ConvBackend::Transform`] degenerates
    /// to im2col for a real convolution: the real field's transforms are
    /// identities). Both kernels produce bit-identical outputs.
    pub fn set_backend(&mut self, backend: ConvBackend) {
        self.backend = backend;
    }

    /// Input channel count.
    pub fn ci(&self) -> usize {
        self.weights.ci
    }

    /// Output channel count.
    pub fn co(&self) -> usize {
        self.weights.co
    }

    /// Kernel size.
    pub fn k(&self) -> usize {
        self.weights.k
    }

    /// Immutable weight access.
    pub fn weights(&self) -> &ConvWeights {
        &self.weights
    }

    /// Mutable weight access (used by quantization and pruning).
    pub fn weights_mut(&mut self) -> &mut ConvWeights {
        &mut self.weights
    }

    /// Bias access.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias access.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Installs a pruning mask (1 = keep, 0 = pruned). The mask is applied
    /// to the weights immediately and re-applied after every backward pass
    /// so pruned weights stay zero during fine-tuning.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the weight count.
    pub fn set_mask(&mut self, mask: Vec<f32>) {
        assert_eq!(mask.len(), self.weights.data.len(), "mask length mismatch");
        for (w, m) in self.weights.data.iter_mut().zip(&mask) {
            *w *= m;
        }
        self.mask = Some(mask);
    }

    /// The installed pruning mask, if any.
    pub fn mask(&self) -> Option<&[f32]> {
        self.mask.as_deref()
    }

    /// Fraction of non-zero weights (1.0 when dense).
    pub fn density(&self) -> f64 {
        match &self.mask {
            None => 1.0,
            Some(m) => m.iter().filter(|v| **v != 0.0).count() as f64 / m.len() as f64,
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv{k}x{k}({ci}->{co})",
            k = self.weights.k,
            ci = self.weights.ci,
            co = self.weights.co
        )
    }

    fn forward(&mut self, input: &T, train: bool) -> T {
        if train {
            // Training always flows through the naive reference kernel
            // (same contract as RingConv2d; backward uses it too).
            self.cached_input = Some(input.clone());
            return conv2d_forward(input, &self.weights, &self.bias);
        }
        self.forward_infer(input)
    }

    fn forward_infer(&self, input: &T) -> T {
        match self.backend {
            ConvBackend::Naive => conv2d_forward(input, &self.weights, &self.bias),
            ConvBackend::Im2col | ConvBackend::Transform => {
                conv2d_forward_im2col(input, &self.weights, &self.bias)
            }
        }
    }

    fn kernel_radius(&self) -> usize {
        self.weights.k / 2
    }

    fn backward(&mut self, dout: &T) -> T {
        let input = self
            .cached_input
            .take()
            .expect("backward without training forward");
        let (mut dw, db) = conv2d_backward_weight(&input, dout, self.weights.k);
        if let Some(mask) = &self.mask {
            for (g, m) in dw.data.iter_mut().zip(mask) {
                *g *= m;
            }
        }
        for (acc, g) in self.dweights.data.iter_mut().zip(&dw.data) {
            *acc += g;
        }
        for (acc, g) in self.dbias.iter_mut().zip(&db) {
            *acc += g;
        }
        conv2d_backward_input(dout, &self.weights)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>)) {
        visitor(ParamGroup {
            values: &mut self.weights.data,
            grads: &mut self.dweights.data,
        });
        visitor(ParamGroup {
            values: &mut self.bias,
            grads: &mut self.dbias,
        });
    }

    fn mults_per_pixel(&self) -> f64 {
        // Effective multiplications honour pruning density.
        (self.weights.co * self.weights.ci * self.weights.k * self.weights.k) as f64
            * self.density()
    }

    fn out_channels(&self, in_channels: usize) -> usize {
        assert_eq!(
            in_channels,
            self.weights.ci,
            "channel mismatch in {}",
            self.name()
        );
        self.weights.co
    }

    fn set_conv_backend(&mut self, backend: ConvBackend) {
        self.set_backend(backend);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Depth-wise `K×K` convolution (one filter per channel) followed
/// conceptually by nothing — used as the DWC baseline of Fig. 1.
pub struct DepthwiseConv2d {
    k: usize,
    channels: usize,
    weights: Vec<f32>,
    dweights: Vec<f32>,
    bias: Vec<f32>,
    dbias: Vec<f32>,
    cached_input: Option<T>,
    backend: ConvBackend,
}

impl DepthwiseConv2d {
    /// Creates a He-initialized depth-wise convolution.
    pub fn new(channels: usize, k: usize, seed: u64) -> Self {
        let std = he_std(k * k);
        let init = T::random_normal(Shape4::new(1, 1, 1, channels * k * k), std, seed);
        Self {
            k,
            channels,
            weights: init.as_slice().to_vec(),
            dweights: vec![0.0; channels * k * k],
            bias: vec![0.0; channels],
            dbias: vec![0.0; channels],
            cached_input: None,
            backend: ConvBackend::Naive,
        }
    }

    /// Builds the block-diagonal lowering of the per-channel filters.
    fn block_diagonal_weights(&self) -> ConvWeights {
        let mut w = ConvWeights::zeros(self.channels, self.channels, self.k);
        for c in 0..self.channels {
            for t in 0..self.k * self.k {
                let idx = w.index(c, c, t / self.k, t % self.k);
                w.data[idx] = self.weights[c * self.k * self.k + t];
            }
        }
        w
    }
}

impl Layer for DepthwiseConv2d {
    fn name(&self) -> String {
        format!("dwconv{k}x{k}({c})", k = self.k, c = self.channels)
    }

    fn forward(&mut self, input: &T, train: bool) -> T {
        if train {
            assert_eq!(input.shape().c, self.channels, "channel mismatch");
            self.cached_input = Some(input.clone());
            return conv2d_forward(input, &self.block_diagonal_weights(), &self.bias);
        }
        self.forward_infer(input)
    }

    fn forward_infer(&self, input: &T) -> T {
        assert_eq!(input.shape().c, self.channels, "channel mismatch");
        // Lower onto a grouped conv by building a block-diagonal weight —
        // simple and reuses the tested kernels; channels are tiny here.
        let w = self.block_diagonal_weights();
        match self.backend {
            ConvBackend::Naive => conv2d_forward(input, &w, &self.bias),
            ConvBackend::Im2col | ConvBackend::Transform => {
                conv2d_forward_im2col(input, &w, &self.bias)
            }
        }
    }

    fn kernel_radius(&self) -> usize {
        self.k / 2
    }

    fn backward(&mut self, dout: &T) -> T {
        let input = self
            .cached_input
            .take()
            .expect("backward without training forward");
        let w = self.block_diagonal_weights();
        let (dw, db) = conv2d_backward_weight(&input, dout, self.k);
        for c in 0..self.channels {
            for t in 0..self.k * self.k {
                self.dweights[c * self.k * self.k + t] +=
                    dw.data[dw.index(c, c, t / self.k, t % self.k)];
            }
            self.dbias[c] += db[c];
        }
        conv2d_backward_input(dout, &w)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>)) {
        visitor(ParamGroup {
            values: &mut self.weights,
            grads: &mut self.dweights,
        });
        visitor(ParamGroup {
            values: &mut self.bias,
            grads: &mut self.dbias,
        });
    }

    fn mults_per_pixel(&self) -> f64 {
        (self.channels * self.k * self.k) as f64
    }

    fn out_channels(&self, in_channels: usize) -> usize {
        assert_eq!(in_channels, self.channels);
        self.channels
    }

    fn set_conv_backend(&mut self, backend: ConvBackend) {
        self.backend = backend;
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_gradcheck() {
        let mut conv = Conv2d::new(2, 3, 3, 42);
        let x = T::random_uniform(Shape4::new(1, 2, 5, 5), -1.0, 1.0, 1);
        let dout = T::random_uniform(Shape4::new(1, 3, 5, 5), -1.0, 1.0, 2);
        let _ = conv.forward(&x, true);
        let dx = conv.backward(&dout);
        // Finite differences on one input element.
        let eps = 1e-2;
        let mut xp = x.clone();
        *xp.at_mut(0, 1, 2, 2) += eps;
        let mut xm = x.clone();
        *xm.at_mut(0, 1, 2, 2) -= eps;
        let dot = |t: &T| -> f32 {
            conv2d_forward(t, conv.weights(), conv.bias())
                .as_slice()
                .iter()
                .zip(dout.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let fd = (dot(&xp) - dot(&xm)) / (2.0 * eps);
        assert!((fd - dx.at(0, 1, 2, 2)).abs() < 1e-2);
    }

    #[test]
    fn mask_freezes_pruned_weights() {
        let mut conv = Conv2d::new(1, 1, 3, 7);
        let mut mask = vec![1.0f32; 9];
        mask[4] = 0.0;
        conv.set_mask(mask);
        assert_eq!(conv.weights().data[4], 0.0);
        assert!((conv.density() - 8.0 / 9.0).abs() < 1e-12);
        let x = T::random_uniform(Shape4::new(1, 1, 4, 4), -1.0, 1.0, 3);
        let _ = conv.forward(&x, true);
        let dout = T::random_uniform(Shape4::new(1, 1, 4, 4), -1.0, 1.0, 4);
        let _ = conv.backward(&dout);
        let mut grads = Vec::new();
        conv.visit_params(&mut |g| grads.push(g.grads.to_vec()));
        assert_eq!(grads[0][4], 0.0, "pruned weight must receive zero gradient");
    }

    #[test]
    fn depthwise_matches_per_channel_conv() {
        let mut dw = DepthwiseConv2d::new(2, 3, 5);
        let x = T::random_uniform(Shape4::new(1, 2, 4, 4), -1.0, 1.0, 6);
        let y = dw.forward(&x, false);
        assert_eq!(y.shape(), x.shape());
        // Output channel 0 must be independent of input channel 1.
        let mut x2 = x.clone();
        for v in x2.plane_mut(0, 1) {
            *v += 10.0;
        }
        let y2 = dw.forward(&x2, false);
        assert_eq!(y.plane(0, 0), y2.plane(0, 0));
        assert_ne!(y.plane(0, 1), y2.plane(0, 1));
    }

    #[test]
    fn backends_are_bit_identical_under_reference_kernel() {
        use ringcnn_tensor::gemm::{forced_kernel_scope, KernelBackend};
        let x = T::random_uniform(Shape4::new(1, 3, 6, 5), -1.0, 1.0, 12);
        let mut conv = Conv2d::new(3, 4, 3, 13);
        let naive = conv.forward(&x, false);
        for backend in [ConvBackend::Im2col, ConvBackend::Transform] {
            conv.set_backend(backend);
            let exact = forced_kernel_scope(KernelBackend::Reference, || conv.forward(&x, false));
            assert_eq!(exact.as_slice(), naive.as_slice(), "{backend}");
            // The blocked SIMD GEMM reassociates f32 adds: tolerance.
            for (a, b) in conv
                .forward(&x, false)
                .as_slice()
                .iter()
                .zip(naive.as_slice())
            {
                assert!((a - b).abs() <= 1e-4, "{backend}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn depthwise_backends_are_bit_identical_under_reference_kernel() {
        use ringcnn_tensor::gemm::{forced_kernel_scope, KernelBackend};
        let x = T::random_uniform(Shape4::new(1, 3, 5, 4), -1.0, 1.0, 14);
        let mut dw = DepthwiseConv2d::new(3, 3, 15);
        let naive = dw.forward(&x, false);
        dw.set_conv_backend(ConvBackend::Im2col);
        let exact = forced_kernel_scope(KernelBackend::Reference, || dw.forward(&x, false));
        assert_eq!(exact.as_slice(), naive.as_slice());
        for (a, b) in dw
            .forward(&x, false)
            .as_slice()
            .iter()
            .zip(naive.as_slice())
        {
            assert!((a - b).abs() <= 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn mults_per_pixel_counts() {
        let mut conv = Conv2d::new(4, 8, 3, 1);
        assert_eq!(conv.mults_per_pixel(), (8 * 4 * 9) as f64);
        assert_eq!(conv.num_params(), 8 * 4 * 9 + 8);
        let dw = DepthwiseConv2d::new(8, 3, 1);
        assert_eq!(dw.mults_per_pixel(), 72.0);
    }
}
