//! Structural layers: [`Sequential`] composition and [`Residual`] blocks
//! (skip connections).

use crate::backend::ConvBackend;
use crate::layer::{Layer, ParamGroup};
use ringcnn_tensor::tensor::Tensor as T;

/// A chain of layers applied in order. `Sequential` is itself a [`Layer`],
/// so blocks nest arbitrarily.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn with(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends an optional layer (skipped when `None`).
    #[must_use]
    pub fn with_opt(mut self, layer: Option<Box<dyn Layer>>) -> Self {
        if let Some(l) = layer {
            self.layers.push(l);
        }
        self
    }

    /// Appends a layer in place.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Direct child access (for pruning/model surgery).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Immutable child access (for the inference runtime's model walk).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Runs a closure on every layer in the tree (depth-first), including
    /// the children of nested [`Sequential`]s and [`Residual`]s.
    pub fn for_each_layer_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        for l in &mut self.layers {
            visit_layer(l.as_mut(), f);
        }
    }
}

fn visit_layer(layer: &mut dyn Layer, f: &mut dyn FnMut(&mut dyn Layer)) {
    // Recurse into known structural layers first.
    if let Some(seq) = layer.as_any_mut().downcast_mut::<Sequential>() {
        for l in &mut seq.layers {
            visit_layer(l.as_mut(), f);
        }
        return;
    }
    if let Some(res) = layer.as_any_mut().downcast_mut::<Residual>() {
        res.body.for_each_layer_mut(f);
        return;
    }
    if let Some(ur) = layer
        .as_any_mut()
        .downcast_mut::<crate::layers::upsample::UpsampleResidual>()
    {
        ur.body_mut().for_each_layer_mut(f);
        return;
    }
    f(layer);
}

impl Layer for Sequential {
    fn name(&self) -> String {
        format!("sequential[{}]", self.layers.len())
    }

    fn forward(&mut self, input: &T, train: bool) -> T {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x, train);
        }
        x
    }

    fn forward_infer(&self, input: &T) -> T {
        let mut x = input.clone();
        for l in &self.layers {
            x = l.forward_infer(&x);
        }
        x
    }

    fn prepare_inference(&mut self) {
        for l in &mut self.layers {
            l.prepare_inference();
        }
    }

    fn backward(&mut self, dout: &T) -> T {
        let mut d = dout.clone();
        for l in self.layers.iter_mut().rev() {
            d = l.backward(&d);
        }
        d
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>)) {
        for l in &mut self.layers {
            l.visit_params(visitor);
        }
    }

    fn mults_per_pixel(&self) -> f64 {
        // NOTE: this naive sum ignores spatial rescaling inside the chain;
        // model builders provide exact accounting via `complexity::count`.
        self.layers.iter().map(|l| l.mults_per_pixel()).sum()
    }

    fn out_channels(&self, in_channels: usize) -> usize {
        self.layers
            .iter()
            .fold(in_channels, |c, l| l.out_channels(c))
    }

    fn set_conv_backend(&mut self, backend: ConvBackend) {
        for l in &mut self.layers {
            l.set_conv_backend(backend);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Residual block: `out = x + body(x)` (shapes must match).
pub struct Residual {
    body: Sequential,
}

impl Residual {
    /// Wraps a body in a skip connection.
    pub fn new(body: Sequential) -> Self {
        Self { body }
    }

    /// The wrapped body.
    pub fn body_mut(&mut self) -> &mut Sequential {
        &mut self.body
    }

    /// Immutable body access (for the inference runtime's model walk).
    pub fn body(&self) -> &Sequential {
        &self.body
    }
}

impl Layer for Residual {
    fn name(&self) -> String {
        format!("residual({})", self.body.name())
    }

    fn forward(&mut self, input: &T, train: bool) -> T {
        let mut out = self.body.forward(input, train);
        out.add_assign(input);
        out
    }

    fn forward_infer(&self, input: &T) -> T {
        let mut out = self.body.forward_infer(input);
        out.add_assign(input);
        out
    }

    fn prepare_inference(&mut self) {
        self.body.prepare_inference();
    }

    fn backward(&mut self, dout: &T) -> T {
        let mut d = self.body.backward(dout);
        d.add_assign(dout);
        d
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>)) {
        self.body.visit_params(visitor);
    }

    fn mults_per_pixel(&self) -> f64 {
        self.body.mults_per_pixel()
    }

    fn out_channels(&self, in_channels: usize) -> usize {
        let co = self.body.out_channels(in_channels);
        assert_eq!(co, in_channels, "residual body must preserve channels");
        co
    }

    fn set_conv_backend(&mut self, backend: ConvBackend) {
        self.body.set_conv_backend(backend);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::activation::Relu;
    use crate::layers::conv::Conv2d;
    use ringcnn_tensor::prelude::*;

    #[test]
    fn sequential_chains_forward() {
        let mut m = Sequential::new()
            .with(Box::new(Conv2d::new(2, 4, 3, 1)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Conv2d::new(4, 2, 3, 2)));
        let x = T::random_uniform(Shape4::new(1, 2, 4, 4), -1.0, 1.0, 9);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), x.shape());
        assert_eq!(m.out_channels(2), 2);
    }

    #[test]
    fn residual_adds_skip() {
        let mut r = Residual::new(Sequential::new()); // empty body: out = 2x
        let x = T::from_vec(Shape4::new(1, 1, 1, 2), vec![1.0, 2.0]);
        let y = r.forward(&x, false);
        assert_eq!(y.as_slice(), &[2.0, 4.0]);
        let d = r.backward(&T::full(Shape4::new(1, 1, 1, 2), 1.0));
        assert_eq!(d.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn sequential_backward_gradcheck() {
        let mut m = Sequential::new()
            .with(Box::new(Conv2d::new(2, 3, 3, 4)))
            .with(Box::new(Relu::new()))
            .with(Box::new(Conv2d::new(3, 2, 3, 5)));
        let x = T::random_uniform(Shape4::new(1, 2, 4, 4), -1.0, 1.0, 10);
        let dout = T::random_uniform(Shape4::new(1, 2, 4, 4), -1.0, 1.0, 11);
        let _ = m.forward(&x, true);
        let dx = m.backward(&dout);
        let eps = 1e-2f32;
        let mut xp = x.clone();
        *xp.at_mut(0, 0, 1, 1) += eps;
        let mut xm = x.clone();
        *xm.at_mut(0, 0, 1, 1) -= eps;
        let f = |t: &T, m: &mut Sequential| -> f32 {
            m.forward(t, false)
                .as_slice()
                .iter()
                .zip(dout.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let fd = (f(&xp, &mut m) - f(&xm, &mut m)) / (2.0 * eps);
        assert!((fd - dx.at(0, 0, 1, 1)).abs() < 2e-2);
    }

    #[test]
    fn for_each_layer_recurses_into_residuals() {
        let mut m = Sequential::new()
            .with(Box::new(Conv2d::new(2, 2, 3, 1)))
            .with(Box::new(Residual::new(
                Sequential::new().with(Box::new(Conv2d::new(2, 2, 3, 2))),
            )));
        let mut names = Vec::new();
        m.for_each_layer_mut(&mut |l| names.push(l.name()));
        assert_eq!(names.len(), 2);
        assert!(names.iter().all(|n| n.starts_with("conv3x3")));
    }

    #[test]
    fn for_each_layer_recurses_into_upsample_residuals() {
        // Regression: pruning must reach convolutions inside the bicubic
        // global-skip wrapper used by SR models.
        use crate::layers::upsample::UpsampleResidual;
        let body = Sequential::new().with(Box::new(Conv2d::new(16, 16, 3, 1)));
        let mut m = Sequential::new().with(Box::new(UpsampleResidual::new(body, 1)));
        let mut names = Vec::new();
        m.for_each_layer_mut(&mut |l| names.push(l.name()));
        assert_eq!(names, vec!["conv3x3(16->16)".to_string()]);
    }
}
