//! Pixel shuffle / unshuffle: lossless space↔depth reshapes used by the
//! ERNet-style models (the "PU" in DnERNet-PU) and the SR upsamplers.

use crate::layer::{Layer, ParamGroup};
use ringcnn_tensor::prelude::*;
use ringcnn_tensor::tensor::Tensor as T;

/// Space-to-depth: `[N, C, H, W] → [N, C·r², H/r, W/r]`.
pub struct PixelUnshuffle {
    r: usize,
}

impl PixelUnshuffle {
    /// Creates an unshuffle of factor `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn new(r: usize) -> Self {
        assert!(r > 0);
        Self { r }
    }

    /// Pure function version (also used by the data pipeline).
    pub fn apply(input: &T, r: usize) -> T {
        let s = input.shape();
        assert_eq!(s.h % r, 0, "height {} not divisible by {r}", s.h);
        assert_eq!(s.w % r, 0, "width {} not divisible by {r}", s.w);
        let out_shape = Shape4::new(s.n, s.c * r * r, s.h / r, s.w / r);
        let mut out = T::zeros(out_shape);
        for b in 0..s.n {
            for c in 0..s.c {
                for y in 0..out_shape.h {
                    for x in 0..out_shape.w {
                        for ry in 0..r {
                            for rx in 0..r {
                                let oc = c * r * r + ry * r + rx;
                                *out.at_mut(b, oc, y, x) = input.at(b, c, y * r + ry, x * r + rx);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

impl Layer for PixelUnshuffle {
    fn name(&self) -> String {
        format!("pixel_unshuffle(x{})", self.r)
    }

    fn forward(&mut self, input: &T, _train: bool) -> T {
        Self::apply(input, self.r)
    }

    fn forward_infer(&self, input: &T) -> T {
        Self::apply(input, self.r)
    }

    fn backward(&mut self, dout: &T) -> T {
        PixelShuffle::apply(dout, self.r)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(ParamGroup<'_>)) {}

    fn out_channels(&self, in_channels: usize) -> usize {
        in_channels * self.r * self.r
    }

    fn spatial_scale(&self) -> (usize, usize) {
        (1, self.r)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Depth-to-space: `[N, C·r², H, W] → [N, C, H·r, W·r]`.
pub struct PixelShuffle {
    r: usize,
}

impl PixelShuffle {
    /// Creates a shuffle of factor `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn new(r: usize) -> Self {
        assert!(r > 0);
        Self { r }
    }

    /// Pure function version.
    pub fn apply(input: &T, r: usize) -> T {
        let s = input.shape();
        assert_eq!(
            s.c % (r * r),
            0,
            "channels {} not divisible by r²={}",
            s.c,
            r * r
        );
        let out_shape = Shape4::new(s.n, s.c / (r * r), s.h * r, s.w * r);
        let mut out = T::zeros(out_shape);
        for b in 0..s.n {
            for oc in 0..out_shape.c {
                for y in 0..s.h {
                    for x in 0..s.w {
                        for ry in 0..r {
                            for rx in 0..r {
                                let ic = oc * r * r + ry * r + rx;
                                *out.at_mut(b, oc, y * r + ry, x * r + rx) = input.at(b, ic, y, x);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

impl Layer for PixelShuffle {
    fn name(&self) -> String {
        format!("pixel_shuffle(x{})", self.r)
    }

    fn forward(&mut self, input: &T, _train: bool) -> T {
        Self::apply(input, self.r)
    }

    fn forward_infer(&self, input: &T) -> T {
        Self::apply(input, self.r)
    }

    fn backward(&mut self, dout: &T) -> T {
        PixelUnshuffle::apply(dout, self.r)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(ParamGroup<'_>)) {}

    fn out_channels(&self, in_channels: usize) -> usize {
        in_channels / (self.r * self.r)
    }

    fn spatial_scale(&self) -> (usize, usize) {
        (self.r, 1)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_unshuffle_roundtrip() {
        let x = T::random_uniform(Shape4::new(2, 3, 6, 4), -1.0, 1.0, 17);
        let down = PixelUnshuffle::apply(&x, 2);
        assert_eq!(down.shape(), Shape4::new(2, 12, 3, 2));
        let up = PixelShuffle::apply(&down, 2);
        assert_eq!(up, x);
    }

    #[test]
    fn unshuffle_layout_matches_convention() {
        // 1 channel, 2x2 image → 4 channels of 1x1.
        let x = T::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let d = PixelUnshuffle::apply(&x, 2);
        assert_eq!(d.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.shape(), Shape4::new(1, 4, 1, 1));
    }

    #[test]
    fn backward_is_inverse() {
        let mut l = PixelUnshuffle::new(2);
        let x = T::random_uniform(Shape4::new(1, 2, 4, 4), -1.0, 1.0, 3);
        let y = l.forward(&x, true);
        let dx = l.backward(&y);
        assert_eq!(dx, x, "gradient of a permutation is its inverse");
    }

    #[test]
    fn layer_metadata() {
        let u = PixelUnshuffle::new(2);
        assert_eq!(u.out_channels(3), 12);
        assert_eq!(u.spatial_scale(), (1, 2));
        let s = PixelShuffle::new(2);
        assert_eq!(s.out_channels(12), 3);
        assert_eq!(s.spatial_scale(), (2, 1));
    }
}
