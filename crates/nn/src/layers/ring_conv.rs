//! Ring convolution (RCONV, eq. (11)): a `K×K` convolution whose weights
//! and features are ring `n`-tuples.
//!
//! Real channels are grouped into tuples of `n` consecutive channels.
//! Training follows §IV-B: the layer is lowered onto its isomorphic
//! real-valued convolution `G` (eq. (4)) so Backprop flows as usual, and
//! the weight gradient is contracted back onto the `n` ring components.
//! This reuses the heavily-tested real conv kernels and is exactly
//! equivalent to ring-domain backprop (property-tested against the
//! ring-form gradients of §IV-B).

use crate::backend::ConvBackend;
use crate::init::he_std;
use crate::layer::{Layer, ParamGroup};
use crate::layers::fast_ring_conv::FastRingConv;
use ringcnn_algebra::ring::Ring;
use ringcnn_tensor::prelude::*;
use ringcnn_tensor::tensor::Tensor as T;

/// `K×K` ring convolution over `n`-tuple channels.
///
/// Weight layout: `[co_t][ci_t][ky][kx][component]`, flat `f32`.
///
/// # Examples
///
/// ```
/// use ringcnn_nn::layers::ring_conv::RingConv2d;
/// use ringcnn_nn::layer::Layer;
/// use ringcnn_algebra::ring::{Ring, RingKind};
/// use ringcnn_tensor::prelude::*;
/// let ring = Ring::from_kind(RingKind::Ri(2));
/// let mut rconv = RingConv2d::new(ring, 4, 8, 3, 1); // 4 -> 8 real channels
/// let x = Tensor::zeros(Shape4::new(1, 4, 6, 6));
/// assert_eq!(rconv.forward(&x, false).shape().c, 8);
/// ```
pub struct RingConv2d {
    ring: Ring,
    ci_t: usize,
    co_t: usize,
    k: usize,
    /// Ring weights, length `co_t·ci_t·k²·n`.
    weights: Vec<f32>,
    dweights: Vec<f32>,
    /// Real bias (one per real output channel, i.e. the bias tuple
    /// components laid out flat).
    bias: Vec<f32>,
    dbias: Vec<f32>,
    cached_input: Option<T>,
    /// Inference kernel selection; training always lowers naively.
    backend: ConvBackend,
    /// Cached transform-domain plan (weights already through `Tg`);
    /// invalidated whenever weights or bias may change.
    plan: Option<FastRingConv>,
    /// Cached isomorphic real-weight expansion for the Naive/Im2col
    /// inference paths; invalidated alongside `plan`.
    expanded: Option<ConvWeights>,
}

impl RingConv2d {
    /// Creates a He-initialized ring convolution.
    ///
    /// `ci`/`co` are *real* channel counts and must be divisible by the
    /// ring dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `ci` or `co` is not a multiple of `ring.n()`.
    pub fn new(ring: Ring, ci: usize, co: usize, k: usize, seed: u64) -> Self {
        let n = ring.n();
        assert_eq!(
            ci % n,
            0,
            "input channels {ci} not a multiple of ring dimension {n}"
        );
        assert_eq!(
            co % n,
            0,
            "output channels {co} not a multiple of ring dimension {n}"
        );
        let (ci_t, co_t) = (ci / n, co / n);
        // Fan-in per real output channel of the expanded conv is ci·k²;
        // each ring weight appears in n expanded positions, so the same
        // He std applies directly to the ring components.
        let std = he_std(ci * k * k);
        let len = co_t * ci_t * k * k * n;
        let init = T::random_normal(Shape4::new(1, 1, 1, len), std, seed);
        Self {
            ring,
            ci_t,
            co_t,
            k,
            weights: init.as_slice().to_vec(),
            dweights: vec![0.0; len],
            bias: vec![0.0; co],
            dbias: vec![0.0; co],
            cached_input: None,
            backend: ConvBackend::Naive,
            plan: None,
            expanded: None,
        }
    }

    /// The active inference backend.
    pub fn backend(&self) -> ConvBackend {
        self.backend
    }

    /// Selects the inference kernel: naive isomorphic expansion, im2col
    /// expansion, or the transform-domain [`FastRingConv`] engine.
    /// Training forwards/backwards always use the naive lowering.
    pub fn set_backend(&mut self, backend: ConvBackend) {
        self.backend = backend;
        self.plan = None;
        self.expanded = None;
    }

    /// The ring algebra of this layer.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Kernel size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Real input channel count.
    pub fn ci(&self) -> usize {
        self.ci_t * self.ring.n()
    }

    /// Real output channel count.
    pub fn co(&self) -> usize {
        self.co_t * self.ring.n()
    }

    /// Tuple-channel counts `(ci_t, co_t)`.
    pub fn tuple_channels(&self) -> (usize, usize) {
        (self.ci_t, self.co_t)
    }

    /// Flat ring-weight access (`[co_t][ci_t][ky][kx][component]`).
    pub fn ring_weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable flat ring-weight access (drops the cached inference
    /// kernels).
    pub fn ring_weights_mut(&mut self) -> &mut [f32] {
        self.plan = None;
        self.expanded = None;
        &mut self.weights
    }

    /// Bias (per real output channel).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias access (drops any cached transform plan).
    pub fn bias_mut(&mut self) -> &mut [f32] {
        self.plan = None;
        &mut self.bias
    }

    /// Flat index of ring weight `(co_t, ci_t, ky, kx, component)`.
    #[inline]
    pub fn windex(&self, cot: usize, cit: usize, ky: usize, kx: usize, comp: usize) -> usize {
        let n = self.ring.n();
        ((((cot * self.ci_t) + cit) * self.k + ky) * self.k + kx) * n + comp
    }

    /// Expands the ring weights onto the isomorphic real convolution
    /// weights (`co_t·n × ci_t·n × k × k`), eq. (4)/Fig. 5.
    pub fn expand_real_weights(&self) -> ConvWeights {
        let n = self.ring.n();
        let (ci, co) = (self.ci(), self.co());
        let mut w = ConvWeights::zeros(co, ci, self.k);
        let mut tuple = vec![0.0f32; n];
        for cot in 0..self.co_t {
            for cit in 0..self.ci_t {
                for ky in 0..self.k {
                    for kx in 0..self.k {
                        let base = self.windex(cot, cit, ky, kx, 0);
                        tuple.copy_from_slice(&self.weights[base..base + n]);
                        let g = self.ring.expand_weights_f32(&tuple);
                        for i in 0..n {
                            for j in 0..n {
                                let idx = w.index(cot * n + i, cit * n + j, ky, kx);
                                w.data[idx] = g[i * n + j];
                            }
                        }
                    }
                }
            }
        }
        w
    }

    /// Contracts a real weight gradient back onto ring components via the
    /// indexing-tensor terms (the adjoint of [`Self::expand_real_weights`]).
    fn contract_weight_grad(&mut self, dw: &ConvWeights) {
        let n = self.ring.n();
        let terms: Vec<_> = self.ring.terms().to_vec();
        for cot in 0..self.co_t {
            for cit in 0..self.ci_t {
                for ky in 0..self.k {
                    for kx in 0..self.k {
                        let base = self.windex(cot, cit, ky, kx, 0);
                        for t in &terms {
                            let (i, k, j) = (t.i as usize, t.k as usize, t.j as usize);
                            let real = dw.data[dw.index(cot * n + i, cit * n + j, ky, kx)];
                            self.dweights[base + k] += t.c * real;
                        }
                    }
                }
            }
        }
    }
}

impl Layer for RingConv2d {
    fn name(&self) -> String {
        format!(
            "rconv{k}x{k}[{ring}]({ci}->{co})",
            k = self.k,
            ring = self.ring.kind(),
            ci = self.ci(),
            co = self.co()
        )
    }

    fn forward(&mut self, input: &T, train: bool) -> T {
        assert_eq!(
            input.shape().c,
            self.ci(),
            "channel mismatch in {}",
            self.name()
        );
        if train {
            // Training lowers onto the naive isomorphic expansion so the
            // forward pass matches `backward` exactly; weights are about
            // to change, so drop the cached inference kernels.
            self.cached_input = Some(input.clone());
            self.plan = None;
            self.expanded = None;
            let w = self.expand_real_weights();
            return conv2d_forward(input, &w, &self.bias);
        }
        // Build the cached kernels through the exclusive borrow, then run
        // the same shared-state path the parallel runtime uses.
        self.prepare_inference();
        self.forward_infer(input)
    }

    fn forward_infer(&self, input: &T) -> T {
        assert_eq!(
            input.shape().c,
            self.ci(),
            "channel mismatch in {}",
            self.name()
        );
        match self.backend {
            ConvBackend::Naive | ConvBackend::Im2col => {
                // Use the cached expansion when `prepare_inference` built
                // it; otherwise expand locally — never through `&self`, so
                // concurrent tile workers cannot race a rebuild.
                let local;
                let w = match &self.expanded {
                    Some(w) => w,
                    None => {
                        local = self.expand_real_weights();
                        &local
                    }
                };
                if self.backend == ConvBackend::Naive {
                    conv2d_forward(input, w, &self.bias)
                } else {
                    conv2d_forward_im2col(input, w, &self.bias)
                }
            }
            ConvBackend::Transform => {
                let local;
                let plan = match &self.plan {
                    Some(p) => p,
                    None => {
                        local = FastRingConv::new(
                            &self.ring,
                            &self.weights,
                            self.ci_t,
                            self.co_t,
                            self.k,
                            &self.bias,
                        );
                        &local
                    }
                };
                plan.forward(input)
            }
        }
    }

    fn prepare_inference(&mut self) {
        // Pre-build the kernel the active backend needs so the shared
        // `forward_infer` path never rebuilds per call. Weight-mutation
        // paths (`ring_weights_mut`, `bias_mut`, `visit_params`, training
        // forward) all drop these caches, so a pre-built plan can never
        // go stale.
        match self.backend {
            ConvBackend::Naive | ConvBackend::Im2col => {
                if self.expanded.is_none() {
                    self.expanded = Some(self.expand_real_weights());
                }
            }
            ConvBackend::Transform => {
                if self.plan.is_none() {
                    self.plan = Some(FastRingConv::new(
                        &self.ring,
                        &self.weights,
                        self.ci_t,
                        self.co_t,
                        self.k,
                        &self.bias,
                    ));
                }
            }
        }
    }

    fn kernel_radius(&self) -> usize {
        self.k / 2
    }

    fn backward(&mut self, dout: &T) -> T {
        let input = self
            .cached_input
            .take()
            .expect("backward without training forward");
        let w = self.expand_real_weights();
        let (dw, db) = conv2d_backward_weight(&input, dout, self.k);
        self.contract_weight_grad(&dw);
        for (acc, g) in self.dbias.iter_mut().zip(&db) {
            *acc += g;
        }
        conv2d_backward_input(dout, &w)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>)) {
        // Visitors (optimizers, quantizers) may mutate the parameters.
        self.plan = None;
        self.expanded = None;
        visitor(ParamGroup {
            values: &mut self.weights,
            grads: &mut self.dweights,
        });
        visitor(ParamGroup {
            values: &mut self.bias,
            grads: &mut self.dbias,
        });
    }

    fn mults_per_pixel(&self) -> f64 {
        // Fast-algorithm real multiplications (eq. (12)): m per ring MAC.
        (self.co_t * self.ci_t * self.k * self.k) as f64 * self.ring.fast().m() as f64
    }

    fn out_channels(&self, in_channels: usize) -> usize {
        assert_eq!(
            in_channels,
            self.ci(),
            "channel mismatch in {}",
            self.name()
        );
        self.co()
    }

    fn set_conv_backend(&mut self, backend: ConvBackend) {
        self.set_backend(backend);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringcnn_algebra::ring::RingKind;

    fn ringconv(kind: RingKind, ci: usize, co: usize) -> RingConv2d {
        RingConv2d::new(Ring::from_kind(kind), ci, co, 3, 11)
    }

    #[test]
    fn ri1_matches_real_conv_shape() {
        let mut rc = ringconv(RingKind::Ri(1), 3, 5);
        let x = T::random_uniform(Shape4::new(1, 3, 4, 4), -1.0, 1.0, 1);
        assert_eq!(rc.forward(&x, false).shape().c, 5);
        assert_eq!(rc.num_params(), 5 * 3 * 9 + 5);
    }

    #[test]
    fn weight_count_reduced_by_n() {
        // DoF reduction: n-times fewer weights than the real conv.
        let mut real = ringconv(RingKind::Ri(1), 8, 8);
        let mut ring4 = ringconv(RingKind::Ri(4), 8, 8);
        let real_w = real.num_params() - 8; // minus bias
        let ring_w = ring4.num_params() - 8;
        assert_eq!(real_w, 4 * ring_w);
    }

    #[test]
    fn forward_matches_manual_ring_mac() {
        // For RH2, check one output pixel against a direct ring-domain
        // computation of eq. (11).
        let ring = Ring::from_kind(RingKind::Rh(2));
        let mut rc = RingConv2d::new(ring.clone(), 2, 2, 1, 3);
        let x = T::random_uniform(Shape4::new(1, 2, 2, 2), -1.0, 1.0, 4);
        let y = rc.forward(&x, false);
        // One tuple in, one tuple out, 1x1 kernel.
        let g = [rc.ring_weights()[0], rc.ring_weights()[1]];
        for py in 0..2 {
            for px in 0..2 {
                let xv = [x.at(0, 0, py, px), x.at(0, 1, py, px)];
                let mut z = [rc.bias()[0], rc.bias()[1]];
                ring.mac_f32(&g, &xv, &mut z);
                assert!((y.at(0, 0, py, px) - z[0]).abs() < 1e-5);
                assert!((y.at(0, 1, py, px) - z[1]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradcheck_ring_weights() {
        for kind in [
            RingKind::Ri(2),
            RingKind::Rh(2),
            RingKind::Complex,
            RingKind::Rh4I,
        ] {
            let mut rc = ringconv(kind, 4, 4);
            let x = T::random_uniform(Shape4::new(1, 4, 4, 4), -1.0, 1.0, 5);
            let dout = T::random_uniform(Shape4::new(1, 4, 4, 4), -1.0, 1.0, 6);
            let _ = rc.forward(&x, true);
            let _dx = rc.backward(&dout);
            let mut grads = Vec::new();
            rc.visit_params(&mut |g| grads.push(g.grads.to_vec()));
            let dw = &grads[0];
            let eps = 1e-2f32;
            for probe in [0usize, 7, 13] {
                let loss = |delta: f32, rc: &mut RingConv2d| -> f32 {
                    rc.ring_weights_mut()[probe] += delta;
                    let y = rc.forward(&x, false);
                    rc.ring_weights_mut()[probe] -= delta;
                    y.as_slice()
                        .iter()
                        .zip(dout.as_slice())
                        .map(|(a, b)| a * b)
                        .sum()
                };
                let fd = (loss(eps, &mut rc) - loss(-eps, &mut rc)) / (2.0 * eps);
                assert!(
                    (fd - dw[probe]).abs() < 3e-2,
                    "{kind:?} w[{probe}]: fd {fd} vs analytic {}",
                    dw[probe]
                );
            }
        }
    }

    #[test]
    fn gradcheck_input() {
        let mut rc = ringconv(RingKind::Ri(4), 4, 4);
        let x = T::random_uniform(Shape4::new(1, 4, 3, 3), -1.0, 1.0, 8);
        let dout = T::random_uniform(Shape4::new(1, 4, 3, 3), -1.0, 1.0, 9);
        let _ = rc.forward(&x, true);
        let dx = rc.backward(&dout);
        let eps = 1e-2f32;
        let mut xp = x.clone();
        *xp.at_mut(0, 2, 1, 1) += eps;
        let mut xm = x.clone();
        *xm.at_mut(0, 2, 1, 1) -= eps;
        let f = |t: &T, rc: &mut RingConv2d| -> f32 {
            rc.forward(t, false)
                .as_slice()
                .iter()
                .zip(dout.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let fd = (f(&xp, &mut rc) - f(&xm, &mut rc)) / (2.0 * eps);
        assert!((fd - dx.at(0, 2, 1, 1)).abs() < 1e-2);
    }

    #[test]
    fn ring_form_input_gradient_equivalence() {
        // §IV-B: for symmetric-G rings, ∇x = g·∇z. Check on a 1×1 rconv
        // with a single tuple: backward dx equals ring product g·dz.
        let ring = Ring::from_kind(RingKind::Rh(4));
        let mut rc = RingConv2d::new(ring.clone(), 4, 4, 1, 21);
        let x = T::random_uniform(Shape4::new(1, 4, 1, 1), -1.0, 1.0, 22);
        let dz = T::random_uniform(Shape4::new(1, 4, 1, 1), -1.0, 1.0, 23);
        let _ = rc.forward(&x, true);
        let dx = rc.backward(&dz);
        let g: Vec<f64> = (0..4).map(|c| f64::from(rc.ring_weights()[c])).collect();
        let dzv: Vec<f64> = (0..4).map(|c| f64::from(dz.at(0, c, 0, 0))).collect();
        let want = ring.grad_input_ring_form(&g, &dzv);
        for c in 0..4 {
            assert!(
                (f64::from(dx.at(0, c, 0, 0)) - want[c]).abs() < 1e-5,
                "component {c}"
            );
        }
    }

    #[test]
    fn backends_agree_and_plan_tracks_weight_edits() {
        let mut rc = ringconv(RingKind::Rh(4), 8, 8);
        let x = T::random_uniform(Shape4::new(1, 8, 5, 5), -1.0, 1.0, 31);
        let naive = rc.forward(&x, false);
        rc.set_backend(ConvBackend::Im2col);
        assert!(naive.mse(&rc.forward(&x, false)) < 1e-12);
        rc.set_backend(ConvBackend::Transform);
        assert!(naive.mse(&rc.forward(&x, false)) < 1e-10);
        // Mutating a weight must invalidate the cached plan: the
        // transform output has to follow the naive output, not go stale.
        rc.ring_weights_mut()[0] += 0.5;
        rc.set_backend(ConvBackend::Naive);
        let naive2 = rc.forward(&x, false);
        assert!(
            naive2.mse(&naive) > 1e-8,
            "weight edit must change the output"
        );
        rc.set_backend(ConvBackend::Transform);
        assert!(
            naive2.mse(&rc.forward(&x, false)) < 1e-10,
            "stale plan after weight edit"
        );
    }

    #[test]
    fn mults_per_pixel_uses_fast_algorithm() {
        let rc = ringconv(RingKind::Ri(4), 8, 8);
        // 2 tuples in/out × 9 taps × m=4 = 144; expanded real would be 576.
        assert_eq!(rc.mults_per_pixel(), 144.0);
        let rc = ringconv(RingKind::Rh4I, 8, 8);
        assert_eq!(rc.mults_per_pixel(), 180.0); // m = 5
    }
}
