//! Model serialization: parameter snapshots ([`ModelParams`]) and
//! complete self-describing model files ([`ModelFile`]).
//!
//! The snapshot records a structural signature (layer names and parameter
//! group lengths) so loading into a mismatched architecture fails loudly
//! instead of silently scrambling weights.
//!
//! A [`ModelFile`] additionally records *how to rebuild the model*: a
//! [`ModelSpec`] naming the architecture and its hyper-parameters plus an
//! [`AlgebraSpec`] naming the `(ring, non-linearity)` pair and any pinned
//! convolution backend. [`instantiate`] turns the file back into a ready
//! [`Sequential`] — the load path of the `ringcnn-serve` model registry.
//! The on-disk format is versioned ([`MODEL_FORMAT`]) line-oriented JSON;
//! every malformed input (truncated file, wrong version, mismatched
//! weights) surfaces as a [`ModelLoadError`], never a panic.

use crate::algebra_choice::Algebra;
use crate::backend::ConvBackend;
use crate::layer::Layer;
use crate::layers::structure::Sequential;
use ringcnn_algebra::relu::Nonlinearity;
use ringcnn_algebra::ring::RingKind;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a model's parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Layer-structure signature (leaf layer names in visiting order).
    pub signature: Vec<String>,
    /// Parameter groups in visiting order.
    pub groups: Vec<Vec<f32>>,
}

/// Error returned when a snapshot does not match the target model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadParamsError(String);

impl std::fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot load parameters: {}", self.0)
    }
}

impl std::error::Error for LoadParamsError {}

/// Extracts a parameter snapshot from a model.
pub fn save_params(model: &mut Sequential) -> ModelParams {
    let mut signature = Vec::new();
    model.for_each_layer_mut(&mut |l| signature.push(l.name()));
    let mut groups = Vec::new();
    model.visit_params(&mut |g| groups.push(g.values.to_vec()));
    ModelParams { signature, groups }
}

/// Loads a snapshot into a model of the same structure.
///
/// # Errors
///
/// Fails when the layer signature or any parameter-group length differs.
pub fn load_params(model: &mut Sequential, params: &ModelParams) -> Result<(), LoadParamsError> {
    let mut signature = Vec::new();
    model.for_each_layer_mut(&mut |l| signature.push(l.name()));
    if signature != params.signature {
        return Err(LoadParamsError(format!(
            "structure mismatch: model {:?} vs snapshot {:?}",
            signature, params.signature
        )));
    }
    // Validate all group lengths before mutating anything.
    let mut lengths = Vec::new();
    model.visit_params(&mut |g| lengths.push(g.values.len()));
    if lengths.len() != params.groups.len() {
        return Err(LoadParamsError(format!(
            "group count mismatch: model {} vs snapshot {}",
            lengths.len(),
            params.groups.len()
        )));
    }
    for (i, (len, group)) in lengths.iter().zip(&params.groups).enumerate() {
        if *len != group.len() {
            return Err(LoadParamsError(format!(
                "group {i} length mismatch: model {len} vs snapshot {}",
                group.len()
            )));
        }
    }
    let mut idx = 0usize;
    model.visit_params(&mut |g| {
        g.values.copy_from_slice(&params.groups[idx]);
        idx += 1;
    });
    Ok(())
}

/// Version tag of the complete-model on-disk format.
pub const MODEL_FORMAT: &str = "ringcnn-model/v1";

/// Architecture + hyper-parameters of a rebuildable model: everything
/// needed to re-instantiate the layer tree (weights live in
/// [`ModelParams`], the algebra in [`AlgebraSpec`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// [`crate::models::vdsr::vdsr`].
    Vdsr {
        /// Convolution layer count.
        depth: usize,
        /// Feature channels.
        width: usize,
        /// Image I/O channels.
        channels_io: usize,
    },
    /// [`crate::models::ffdnet::ffdnet`].
    Ffdnet {
        /// Convolution layer count.
        depth: usize,
        /// Feature channels.
        width: usize,
        /// Image I/O channels.
        channels_io: usize,
    },
    /// [`crate::models::ernet::dn_ernet_pu`] (pixel-unshuffled denoiser).
    DnErnet {
        /// ERModule count `B`.
        b: usize,
        /// Pumping ratio `R`.
        r: usize,
        /// Extra pumping layers `N`.
        n_extra: usize,
        /// Base channel width.
        width: usize,
        /// Image I/O channels.
        channels_io: usize,
    },
    /// [`crate::models::ernet::sr4_ernet`] (×4 super-resolution).
    Sr4Ernet {
        /// ERModule count `B`.
        b: usize,
        /// Pumping ratio `R`.
        r: usize,
        /// Extra pumping layers `N`.
        n_extra: usize,
        /// Base channel width.
        width: usize,
        /// Image I/O channels.
        channels_io: usize,
    },
    /// [`crate::models::srresnet::srresnet`] (×4 super-resolution).
    SrResNet {
        /// Residual blocks in the trunk.
        blocks: usize,
        /// Feature channels.
        channels: usize,
        /// Depth-wise + point-wise factorized convolutions.
        depthwise: bool,
        /// Image I/O channels.
        channels_io: usize,
    },
}

impl ModelSpec {
    /// Instantiates the architecture over `alg` (fresh `seed`-derived
    /// weights; [`instantiate`] overwrites them from the snapshot).
    pub fn build(&self, alg: &Algebra, seed: u64) -> Sequential {
        match *self {
            ModelSpec::Vdsr {
                depth,
                width,
                channels_io,
            } => crate::models::vdsr::vdsr(alg, depth, width, channels_io, seed),
            ModelSpec::Ffdnet {
                depth,
                width,
                channels_io,
            } => crate::models::ffdnet::ffdnet(alg, depth, width, channels_io, seed),
            ModelSpec::DnErnet {
                b,
                r,
                n_extra,
                width,
                channels_io,
            } => crate::models::ernet::dn_ernet_pu(
                alg,
                crate::models::ernet::ErNetConfig {
                    b,
                    r,
                    n_extra,
                    width,
                },
                channels_io,
                seed,
            ),
            ModelSpec::Sr4Ernet {
                b,
                r,
                n_extra,
                width,
                channels_io,
            } => crate::models::ernet::sr4_ernet(
                alg,
                crate::models::ernet::ErNetConfig {
                    b,
                    r,
                    n_extra,
                    width,
                },
                channels_io,
                seed,
            ),
            ModelSpec::SrResNet {
                blocks,
                channels,
                depthwise,
                channels_io,
            } => {
                let mut cfg = crate::models::srresnet::SrResNetConfig::tiny()
                    .with_blocks(blocks)
                    .with_channels(channels);
                if depthwise {
                    cfg = cfg.with_depthwise();
                }
                crate::models::srresnet::srresnet(alg, cfg, channels_io, seed)
            }
        }
    }

    /// Image I/O channel count (what an inference request must supply).
    pub fn channels_io(&self) -> usize {
        match *self {
            ModelSpec::Vdsr { channels_io, .. }
            | ModelSpec::Ffdnet { channels_io, .. }
            | ModelSpec::DnErnet { channels_io, .. }
            | ModelSpec::Sr4Ernet { channels_io, .. }
            | ModelSpec::SrResNet { channels_io, .. } => channels_io,
        }
    }

    /// Short architecture label, e.g. `vdsr-d4c16`.
    pub fn label(&self) -> String {
        match *self {
            ModelSpec::Vdsr { depth, width, .. } => format!("vdsr-d{depth}c{width}"),
            ModelSpec::Ffdnet { depth, width, .. } => format!("ffdnet-d{depth}c{width}"),
            ModelSpec::DnErnet { b, r, n_extra, .. } => format!("dn-ernet-B{b}R{r}N{n_extra}"),
            ModelSpec::Sr4Ernet { b, r, n_extra, .. } => format!("sr4-ernet-B{b}R{r}N{n_extra}"),
            ModelSpec::SrResNet {
                blocks, channels, ..
            } => format!("srresnet-b{blocks}c{channels}"),
        }
    }
}

/// Serializable description of an [`Algebra`]: the ring, the
/// non-linearity, and the pinned convolution backend (if any).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgebraSpec {
    /// Ring variant.
    pub ring: RingKind,
    /// Ring non-linearity.
    pub nonlinearity: Nonlinearity,
    /// Pinned backend; `None` = automatic per-ring selection.
    pub backend: Option<ConvBackend>,
}

impl AlgebraSpec {
    /// Captures an [`Algebra`].
    pub fn of(alg: &Algebra) -> Self {
        Self {
            ring: alg.ring().kind(),
            nonlinearity: alg.nonlinearity(),
            backend: alg.pinned_backend(),
        }
    }

    /// Rebuilds the [`Algebra`].
    pub fn algebra(&self) -> Algebra {
        let alg = Algebra::new(self.ring, self.nonlinearity);
        match self.backend {
            Some(b) => alg.with_backend(b),
            None => alg,
        }
    }

    /// Display label, e.g. `(RH4, fcw)+transform`.
    pub fn label(&self) -> String {
        let base = self.algebra().label();
        match self.backend {
            Some(b) => format!("{base}+{b}"),
            None => base,
        }
    }
}

/// A complete, self-describing model file: architecture, algebra, and
/// trained weights, under a versioned format tag.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelFile {
    /// Format version tag ([`MODEL_FORMAT`]).
    pub format: String,
    /// Model name (the registry key, e.g. `ffdnet_real`).
    pub name: String,
    /// Architecture + hyper-parameters.
    pub spec: ModelSpec,
    /// Ring/non-linearity/backend.
    pub algebra: AlgebraSpec,
    /// Weight snapshot.
    pub params: ModelParams,
}

/// Why a model file failed to load. Every malformed input maps here —
/// the load path must never panic.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelLoadError {
    /// The text is not valid JSON for the schema (truncated file, type
    /// mismatch, missing field).
    Parse(String),
    /// The format tag is missing or names an unsupported version.
    Format(String),
    /// The weight snapshot does not fit the declared architecture.
    Params(LoadParamsError),
}

impl std::fmt::Display for ModelLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelLoadError::Parse(e) => write!(f, "model file does not parse: {e}"),
            ModelLoadError::Format(t) => {
                write!(f, "unsupported model format `{t}` (want {MODEL_FORMAT})")
            }
            ModelLoadError::Params(e) => write!(f, "model file weights mismatch: {e}"),
        }
    }
}

impl std::error::Error for ModelLoadError {}

/// Exports a complete model file. The weight snapshot is validated
/// against a fresh `spec`-built model so an architecture/spec mismatch
/// fails at export time, not at every future load.
///
/// # Errors
///
/// Fails when `model` does not have the structure that `spec` over
/// `algebra` builds.
pub fn export_model(
    name: &str,
    spec: ModelSpec,
    algebra: AlgebraSpec,
    model: &mut Sequential,
) -> Result<ModelFile, ModelLoadError> {
    let params = save_params(model);
    let mut rebuilt = spec.build(&algebra.algebra(), 0);
    load_params(&mut rebuilt, &params).map_err(ModelLoadError::Params)?;
    Ok(ModelFile {
        format: MODEL_FORMAT.into(),
        name: name.into(),
        spec,
        algebra,
        params,
    })
}

/// Renders a model file to its on-disk JSON form.
pub fn model_to_json(file: &ModelFile) -> String {
    serde_json::to_string(file).expect("model file serializes")
}

/// Parses on-disk JSON into a [`ModelFile`] (format-checked).
///
/// # Errors
///
/// [`ModelLoadError::Parse`] on malformed/truncated JSON,
/// [`ModelLoadError::Format`] on a wrong version tag.
pub fn model_from_json(text: &str) -> Result<ModelFile, ModelLoadError> {
    // Check the format tag first so a version mismatch is reported as
    // such even when later fields don't parse under this schema.
    let value: serde::Value =
        serde_json::from_str(text).map_err(|e| ModelLoadError::Parse(e.to_string()))?;
    let tag = value
        .field("format")
        .ok()
        .and_then(|v| match v {
            serde::Value::Str(s) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_default();
    if tag != MODEL_FORMAT {
        return Err(ModelLoadError::Format(tag));
    }
    serde_json::from_str(text).map_err(|e| ModelLoadError::Parse(e.to_string()))
}

/// Rebuilds the ready-to-run model a file describes: instantiates the
/// architecture over the recorded algebra and loads the weights.
///
/// # Errors
///
/// [`ModelLoadError::Params`] when the snapshot does not fit the
/// declared architecture (corrupt or hand-edited file).
pub fn instantiate(file: &ModelFile) -> Result<(Algebra, Sequential), ModelLoadError> {
    let alg = file.algebra.algebra();
    let mut model = file.spec.build(&alg, 0);
    load_params(&mut model, &file.params).map_err(ModelLoadError::Params)?;
    Ok((alg, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra_choice::Algebra;
    use ringcnn_tensor::prelude::*;

    fn model(alg: &Algebra) -> Sequential {
        Sequential::new()
            .with(alg.conv(2, 4, 3, 1))
            .with_opt(alg.activation())
            .with(alg.conv(4, 2, 3, 2))
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let alg = Algebra::ri_fh(2);
        let mut a = model(&alg);
        let x = Tensor::random_uniform(Shape4::new(1, 2, 6, 6), 0.0, 1.0, 5);
        let want = a.forward(&x, false);
        let snapshot = save_params(&mut a);
        // Fresh model with different seeds → different outputs…
        let mut b = Sequential::new()
            .with(alg.conv(2, 4, 3, 77))
            .with_opt(alg.activation())
            .with(alg.conv(4, 2, 3, 78));
        assert!(b.forward(&x, false).mse(&want) > 1e-9);
        // …until the snapshot is loaded.
        load_params(&mut b, &snapshot).unwrap();
        assert_eq!(b.forward(&x, false), want);
    }

    #[test]
    fn structure_mismatch_is_rejected() {
        let mut a = model(&Algebra::ri_fh(2));
        let snapshot = save_params(&mut a);
        let mut wrong = model(&Algebra::ri_fh(4));
        let err = load_params(&mut wrong, &snapshot).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
        let mut wrong_width = Sequential::new().with(Algebra::ri_fh(2).conv(2, 8, 3, 1));
        assert!(load_params(&mut wrong_width, &snapshot).is_err());
    }

    #[test]
    fn snapshot_is_serde_serializable() {
        let mut a = model(&Algebra::real());
        let snapshot = save_params(&mut a);
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: ModelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
    }

    use ringcnn_algebra::ring::RingKind;

    #[test]
    fn model_file_roundtrips_all_specs() {
        // Every spec × a couple of algebras: export → JSON → instantiate
        // must reproduce outputs exactly.
        let specs = [
            ModelSpec::Vdsr {
                depth: 3,
                width: 8,
                channels_io: 1,
            },
            ModelSpec::Ffdnet {
                depth: 3,
                width: 8,
                channels_io: 1,
            },
            ModelSpec::DnErnet {
                b: 1,
                r: 2,
                n_extra: 0,
                width: 8,
                channels_io: 1,
            },
            ModelSpec::Sr4Ernet {
                b: 1,
                r: 2,
                n_extra: 0,
                width: 8,
                channels_io: 1,
            },
            ModelSpec::SrResNet {
                blocks: 1,
                channels: 8,
                depthwise: false,
                channels_io: 1,
            },
        ];
        for (i, spec) in specs.into_iter().enumerate() {
            for alg in [Algebra::real(), Algebra::with_fcw(RingKind::Rh(4))] {
                let mut m = spec.build(&alg, 40 + i as u64);
                let x = Tensor::random_uniform(Shape4::new(1, 1, 8, 8), 0.0, 1.0, 3);
                let want = m.forward(&x, false);
                let file =
                    export_model(&spec.label(), spec, AlgebraSpec::of(&alg), &mut m).unwrap();
                let json = model_to_json(&file);
                let back = model_from_json(&json).unwrap();
                assert_eq!(back, file);
                let (alg2, mut m2) = instantiate(&back).unwrap();
                assert_eq!(alg2.label(), alg.label());
                assert_eq!(
                    m2.forward(&x, false).as_slice(),
                    want.as_slice(),
                    "{} over {}",
                    spec.label(),
                    alg.label()
                );
            }
        }
    }

    #[test]
    fn model_file_records_pinned_backend() {
        let alg =
            Algebra::with_fcw(RingKind::Rh(4)).with_backend(crate::backend::ConvBackend::Naive);
        let spec = ModelSpec::Vdsr {
            depth: 2,
            width: 8,
            channels_io: 1,
        };
        let mut m = spec.build(&alg, 7);
        let file = export_model("pinned", spec, AlgebraSpec::of(&alg), &mut m).unwrap();
        let (alg2, _) = instantiate(&model_from_json(&model_to_json(&file)).unwrap()).unwrap();
        assert_eq!(
            alg2.conv_backend(),
            crate::backend::ConvBackend::Naive,
            "pinned backend must survive the round trip"
        );
        // Unpinned algebras stay on automatic selection.
        let alg = Algebra::with_fcw(RingKind::Rh(4));
        let mut m = spec.build(&alg, 7);
        let file = export_model("auto", spec, AlgebraSpec::of(&alg), &mut m).unwrap();
        assert_eq!(file.algebra.backend, None);
    }

    #[test]
    fn corrupt_model_files_error_instead_of_panicking() {
        let alg = Algebra::ri_fh(2);
        let spec = ModelSpec::Vdsr {
            depth: 2,
            width: 8,
            channels_io: 1,
        };
        let mut m = spec.build(&alg, 5);
        let json = model_to_json(&export_model("m", spec, AlgebraSpec::of(&alg), &mut m).unwrap());

        // Truncation at any prefix must be a Parse/Format error, never a
        // panic (the registry reads untrusted files).
        for cut in [0, 1, json.len() / 4, json.len() / 2, json.len() - 1] {
            let err = model_from_json(&json[..cut]).unwrap_err();
            assert!(
                matches!(err, ModelLoadError::Parse(_) | ModelLoadError::Format(_)),
                "cut at {cut}: {err}"
            );
        }
        // Not JSON at all.
        assert!(matches!(
            model_from_json("not json").unwrap_err(),
            ModelLoadError::Parse(_)
        ));
        // Wrong format version.
        let wrong = json.replacen("ringcnn-model/v1", "ringcnn-model/v999", 1);
        let err = model_from_json(&wrong).unwrap_err();
        assert!(
            matches!(err, ModelLoadError::Format(ref t) if t.contains("v999")),
            "{err}"
        );
        // Weights that don't fit the declared architecture.
        let mut file = model_from_json(&json).unwrap();
        file.params.groups[0].pop();
        match instantiate(&file) {
            Err(ModelLoadError::Params(_)) => {}
            Err(e) => panic!("wrong error for corrupt weights: {e}"),
            Ok(_) => panic!("corrupt weights must not load"),
        }
        // Export with a spec that doesn't describe the model.
        let bad_spec = ModelSpec::Vdsr {
            depth: 3,
            width: 8,
            channels_io: 1,
        };
        let mut m = spec.build(&alg, 5);
        assert!(matches!(
            export_model("m", bad_spec, AlgebraSpec::of(&alg), &mut m).unwrap_err(),
            ModelLoadError::Params(_)
        ));
    }
}
