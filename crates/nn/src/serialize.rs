//! Model parameter serialization: export/import the trained weights of a
//! model as a structured, serde-serializable snapshot.
//!
//! The snapshot records a structural signature (layer names and parameter
//! group lengths) so loading into a mismatched architecture fails loudly
//! instead of silently scrambling weights.

use crate::layer::Layer;
use crate::layers::structure::Sequential;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a model's parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Layer-structure signature (leaf layer names in visiting order).
    pub signature: Vec<String>,
    /// Parameter groups in visiting order.
    pub groups: Vec<Vec<f32>>,
}

/// Error returned when a snapshot does not match the target model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadParamsError(String);

impl std::fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot load parameters: {}", self.0)
    }
}

impl std::error::Error for LoadParamsError {}

/// Extracts a parameter snapshot from a model.
pub fn save_params(model: &mut Sequential) -> ModelParams {
    let mut signature = Vec::new();
    model.for_each_layer_mut(&mut |l| signature.push(l.name()));
    let mut groups = Vec::new();
    model.visit_params(&mut |g| groups.push(g.values.to_vec()));
    ModelParams { signature, groups }
}

/// Loads a snapshot into a model of the same structure.
///
/// # Errors
///
/// Fails when the layer signature or any parameter-group length differs.
pub fn load_params(model: &mut Sequential, params: &ModelParams) -> Result<(), LoadParamsError> {
    let mut signature = Vec::new();
    model.for_each_layer_mut(&mut |l| signature.push(l.name()));
    if signature != params.signature {
        return Err(LoadParamsError(format!(
            "structure mismatch: model {:?} vs snapshot {:?}",
            signature, params.signature
        )));
    }
    // Validate all group lengths before mutating anything.
    let mut lengths = Vec::new();
    model.visit_params(&mut |g| lengths.push(g.values.len()));
    if lengths.len() != params.groups.len() {
        return Err(LoadParamsError(format!(
            "group count mismatch: model {} vs snapshot {}",
            lengths.len(),
            params.groups.len()
        )));
    }
    for (i, (len, group)) in lengths.iter().zip(&params.groups).enumerate() {
        if *len != group.len() {
            return Err(LoadParamsError(format!(
                "group {i} length mismatch: model {len} vs snapshot {}",
                group.len()
            )));
        }
    }
    let mut idx = 0usize;
    model.visit_params(&mut |g| {
        g.values.copy_from_slice(&params.groups[idx]);
        idx += 1;
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra_choice::Algebra;
    use ringcnn_tensor::prelude::*;

    fn model(alg: &Algebra) -> Sequential {
        Sequential::new()
            .with(alg.conv(2, 4, 3, 1))
            .with_opt(alg.activation())
            .with(alg.conv(4, 2, 3, 2))
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let alg = Algebra::ri_fh(2);
        let mut a = model(&alg);
        let x = Tensor::random_uniform(Shape4::new(1, 2, 6, 6), 0.0, 1.0, 5);
        let want = a.forward(&x, false);
        let snapshot = save_params(&mut a);
        // Fresh model with different seeds → different outputs…
        let mut b = Sequential::new()
            .with(alg.conv(2, 4, 3, 77))
            .with_opt(alg.activation())
            .with(alg.conv(4, 2, 3, 78));
        assert!(b.forward(&x, false).mse(&want) > 1e-9);
        // …until the snapshot is loaded.
        load_params(&mut b, &snapshot).unwrap();
        assert_eq!(b.forward(&x, false), want);
    }

    #[test]
    fn structure_mismatch_is_rejected() {
        let mut a = model(&Algebra::ri_fh(2));
        let snapshot = save_params(&mut a);
        let mut wrong = model(&Algebra::ri_fh(4));
        let err = load_params(&mut wrong, &snapshot).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
        let mut wrong_width = Sequential::new().with(Algebra::ri_fh(2).conv(2, 8, 3, 1));
        assert!(load_params(&mut wrong_width, &snapshot).is_err());
    }

    #[test]
    fn snapshot_is_serde_serializable() {
        let mut a = model(&Algebra::real());
        let snapshot = save_params(&mut a);
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: ModelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
    }
}
