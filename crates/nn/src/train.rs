//! Minimal training loops for regression (imaging) and classification
//! (Appendix C), with the paper-style two-phase learning-rate schedule
//! (Table III: initial rate, decayed for the final fine-tune phase).

use crate::layer::Layer;
use crate::layers::structure::Sequential;
use crate::loss::{cross_entropy_loss, mse_loss};
use crate::optim::Adam;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ringcnn_tensor::prelude::*;

/// Training hyper-parameters (a CPU-scale analogue of Table III).
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Total gradient steps.
    pub steps: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Learning rate is multiplied by 0.1 after this fraction of steps
    /// (the "polishment" phase).
    pub decay_after: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            steps: 300,
            batch: 4,
            lr: 2e-3,
            decay_after: 0.7,
            seed: 0,
        }
    }
}

/// Summary of one training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Loss after each step.
    pub losses: Vec<f64>,
    /// Mean loss over the last 10% of steps.
    pub final_loss: f64,
}

/// Trains `model` to map `inputs[i] → targets[i]` under MSE.
///
/// `inputs`/`targets` are datasets stacked along the batch dimension.
///
/// # Panics
///
/// Panics if the two datasets have different item counts.
pub fn train_regression(
    model: &mut Sequential,
    inputs: &Tensor,
    targets: &Tensor,
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(
        inputs.shape().n,
        targets.shape().n,
        "paired datasets required"
    );
    let count = inputs.shape().n;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(cfg.lr);
    let mut losses = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        adam.lr = schedule(cfg, step);
        let idx: Vec<usize> = (0..cfg.batch).map(|_| rng.gen_range(0..count)).collect();
        let x = gather(inputs, &idx);
        let y = gather(targets, &idx);
        model.zero_grads();
        let pred = model.forward(&x, true);
        let (loss, grad) = mse_loss(&pred, &y);
        model.backward(&grad);
        adam.step(model);
        losses.push(loss);
    }
    let tail = (losses.len() / 10).max(1);
    let final_loss = losses[losses.len() - tail..].iter().sum::<f64>() / tail as f64;
    TrainReport { losses, final_loss }
}

/// Trains a classifier on `(inputs, labels)`; returns per-step losses and
/// the final training accuracy sampled on the whole set.
pub fn train_classifier(
    model: &mut Sequential,
    inputs: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(inputs.shape().n, labels.len(), "one label per item");
    let count = labels.len();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(cfg.lr);
    let mut losses = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        adam.lr = schedule(cfg, step);
        let idx: Vec<usize> = (0..cfg.batch).map(|_| rng.gen_range(0..count)).collect();
        let x = gather(inputs, &idx);
        let y: Vec<usize> = idx.iter().map(|i| labels[*i]).collect();
        model.zero_grads();
        let logits = model.forward(&x, true);
        let (loss, grad, _) = cross_entropy_loss(&logits, &y);
        model.backward(&grad);
        adam.step(model);
        losses.push(loss);
    }
    let tail = (losses.len() / 10).max(1);
    let final_loss = losses[losses.len() - tail..].iter().sum::<f64>() / tail as f64;
    TrainReport { losses, final_loss }
}

/// Batched inference over a stacked dataset (inference mode, no caches).
pub fn predict(model: &mut Sequential, inputs: &Tensor) -> Tensor {
    model.forward(inputs, false)
}

/// Classification accuracy of `model` on a labelled set.
pub fn accuracy(model: &mut Sequential, inputs: &Tensor, labels: &[usize]) -> f64 {
    let logits = model.forward(inputs, false);
    let (_, _, correct) = cross_entropy_loss(&logits, labels);
    correct as f64 / labels.len().max(1) as f64
}

fn schedule(cfg: &TrainConfig, step: usize) -> f32 {
    if (step as f64) < cfg.decay_after * cfg.steps as f64 {
        cfg.lr
    } else {
        cfg.lr * 0.1
    }
}

fn gather(data: &Tensor, idx: &[usize]) -> Tensor {
    let items: Vec<Tensor> = idx.iter().map(|i| data.batch_item(*i)).collect();
    Tensor::stack_batches(&items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra_choice::Algebra;

    #[test]
    fn regression_reduces_loss_on_identity_task() {
        // Teach a 1-layer conv to pass its input through.
        let alg = Algebra::real();
        let mut model = Sequential::new().with(alg.conv(1, 1, 3, 42));
        let xs = Tensor::random_uniform(Shape4::new(8, 1, 6, 6), 0.0, 1.0, 1);
        let cfg = TrainConfig {
            steps: 200,
            batch: 4,
            lr: 5e-2,
            decay_after: 0.8,
            seed: 2,
        };
        let report = train_regression(&mut model, &xs, &xs, &cfg);
        assert!(
            report.final_loss < report.losses[0] * 0.1,
            "loss {} -> {}",
            report.losses[0],
            report.final_loss
        );
    }

    #[test]
    fn ring_model_learns_identity_too() {
        let alg = Algebra::ri_fh(2);
        let mut model = Sequential::new().with(alg.conv(2, 2, 3, 42));
        let xs = Tensor::random_uniform(Shape4::new(8, 2, 6, 6), 0.0, 1.0, 3);
        let cfg = TrainConfig {
            steps: 200,
            batch: 4,
            lr: 5e-2,
            decay_after: 0.8,
            seed: 4,
        };
        let report = train_regression(&mut model, &xs, &xs, &cfg);
        assert!(report.final_loss < report.losses[0] * 0.2);
    }

    #[test]
    fn classifier_learns_trivial_split() {
        // Two classes distinguished by mean intensity.
        let alg = Algebra::real();
        let mut model = Sequential::new()
            .with(alg.conv(1, 4, 3, 7))
            .with_opt(alg.activation())
            .with(Box::new(crate::layers::dense::GlobalAvgPool::new()))
            .with(Box::new(crate::layers::dense::Dense::new(4, 2, 8)));
        let bright = Tensor::random_uniform(Shape4::new(8, 1, 4, 4), 0.7, 1.0, 5);
        let dark = Tensor::random_uniform(Shape4::new(8, 1, 4, 4), 0.0, 0.3, 6);
        let xs = Tensor::stack_batches(&[bright, dark]);
        let labels: Vec<usize> = (0..16).map(|i| usize::from(i >= 8)).collect();
        let cfg = TrainConfig {
            steps: 150,
            batch: 8,
            lr: 2e-2,
            decay_after: 0.8,
            seed: 7,
        };
        let _ = train_classifier(&mut model, &xs, &labels, &cfg);
        assert!(accuracy(&mut model, &xs, &labels) > 0.9);
    }

    #[test]
    fn schedule_decays() {
        let cfg = TrainConfig {
            steps: 100,
            decay_after: 0.5,
            lr: 1.0,
            batch: 1,
            seed: 0,
        };
        assert_eq!(schedule(&cfg, 10), 1.0);
        assert!((schedule(&cfg, 60) - 0.1).abs() < 1e-6);
    }
}
