//! Training losses: mean-squared error, L1, and softmax cross-entropy
//! (for the Appendix-C recognition study).

use ringcnn_tensor::tensor::Tensor;

/// Mean-squared error and its gradient w.r.t. the prediction.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    let count = pred.as_slice().len().max(1) as f64;
    let mut grad = pred.clone();
    grad.sub_assign(target);
    let loss: f64 = grad
        .as_slice()
        .iter()
        .map(|d| f64::from(*d) * f64::from(*d))
        .sum::<f64>()
        / count;
    grad.scale((2.0 / count) as f32);
    (loss, grad)
}

/// Mean absolute error and its (sub)gradient.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn l1_loss(pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    let count = pred.as_slice().len().max(1) as f64;
    let mut grad = pred.clone();
    grad.sub_assign(target);
    let loss: f64 = grad
        .as_slice()
        .iter()
        .map(|d| f64::from(d.abs()))
        .sum::<f64>()
        / count;
    grad.map_inplace(|d| d.signum() / count as f32);
    (loss, grad)
}

/// Softmax cross-entropy over `[N, C, 1, 1]` logits with integer labels.
///
/// Returns `(mean loss, gradient, correct_count)`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.shape().n` or logits are not
/// `[N, C, 1, 1]`.
pub fn cross_entropy_loss(logits: &Tensor, labels: &[usize]) -> (f64, Tensor, usize) {
    let s = logits.shape();
    assert_eq!((s.h, s.w), (1, 1), "logits must be [N, C, 1, 1]");
    assert_eq!(labels.len(), s.n, "one label per batch item");
    let mut grad = Tensor::zeros(s);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for b in 0..s.n {
        let row: Vec<f32> = (0..s.c).map(|c| logits.at(b, c, 0, 0)).collect();
        let max = row.iter().fold(f32::NEG_INFINITY, |m, v| m.max(*v));
        let exps: Vec<f64> = row.iter().map(|v| f64::from(v - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        let label = labels[b];
        assert!(label < s.c, "label out of range");
        loss -= (exps[label] / z).ln();
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if argmax == label {
            correct += 1;
        }
        for c in 0..s.c {
            let p = (exps[c] / z) as f32;
            *grad.at_mut(b, c, 0, 0) = (p - if c == label { 1.0 } else { 0.0 }) / s.n as f32;
        }
    }
    (loss / s.n as f64, grad, correct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringcnn_tensor::prelude::*;

    #[test]
    fn mse_zero_for_equal() {
        let t = Tensor::random_uniform(Shape4::new(1, 2, 3, 3), 0.0, 1.0, 1);
        let (l, g) = mse_loss(&t, &t);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let p = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.5, -0.3]);
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![0.1, 0.4]);
        let (_, g) = mse_loss(&p, &t);
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= eps;
            let fd = (mse_loss(&pp, &t).0 - mse_loss(&pm, &t).0) / (2.0 * f64::from(eps));
            assert!((fd - f64::from(g.as_slice()[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn l1_loss_value() {
        let p = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![1.0, -1.0]);
        let t = Tensor::zeros(Shape4::new(1, 1, 1, 2));
        let (l, g) = l1_loss(&p, &t);
        assert!((l - 1.0).abs() < 1e-9);
        assert_eq!(g.as_slice(), &[0.5, -0.5]);
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let logits = Tensor::from_vec(Shape4::new(1, 3, 1, 1), vec![5.0, 0.0, 0.0]);
        let (l_good, _, c_good) = cross_entropy_loss(&logits, &[0]);
        let (l_bad, _, c_bad) = cross_entropy_loss(&logits, &[2]);
        assert!(l_good < l_bad);
        assert_eq!(c_good, 1);
        assert_eq!(c_bad, 0);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_item() {
        let logits = Tensor::from_vec(Shape4::new(1, 4, 1, 1), vec![0.3, -0.7, 1.1, 0.0]);
        let (_, g, _) = cross_entropy_loss(&logits, &[1]);
        let sum: f32 = g.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6);
    }
}
