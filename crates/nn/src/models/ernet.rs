//! ERNet-style models: the compact residual CNNs of the eCNN backbone
//! \[21\], used as the real-valued base structures of the paper's quality
//! evaluations (Fig. 9, Table IV).
//!
//! Configuration follows the paper's notation: ERModule count `B`, base
//! pumping ratio `R` (channel expansion inside a module), and additional
//! pumping layer count `N`. Exact eCNN internals are not public in the
//! RingCNN text; this is a faithful-in-spirit reconstruction (residual
//! modules with channel pumping, pixel-unshuffled denoising input,
//! pixel-shuffle SR upsampling) — see DESIGN.md §3.

use crate::algebra_choice::Algebra;
use crate::layers::shuffle::{PixelShuffle, PixelUnshuffle};
use crate::layers::structure::{Residual, Sequential};

/// ERNet configuration: `B` modules, pumping ratio `R`, `N` extra pumping
/// layers, and the base channel width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ErNetConfig {
    /// Number of ERModules (`B`).
    pub b: usize,
    /// Base pumping ratio (`R`): channel expansion inside a module.
    pub r: usize,
    /// Additional pumping layers per module (`N`).
    pub n_extra: usize,
    /// Base channel width (real channels; must divide by the algebra's n).
    pub width: usize,
}

impl ErNetConfig {
    /// Paper-style label, e.g. `B2R2N0`.
    pub fn label(&self) -> String {
        format!("B{}R{}N{}", self.b, self.r, self.n_extra)
    }

    /// A small config suitable for CPU experiments.
    pub fn tiny() -> Self {
        Self {
            b: 2,
            r: 2,
            n_extra: 0,
            width: 8,
        }
    }
}

/// One ERModule: a residual block with channel pumping
/// `C → R·C → … → R·C → C` and the algebra's non-linearity between
/// convolutions.
pub fn ermodule(alg: &Algebra, width: usize, r: usize, n_extra: usize, seed: u64) -> Residual {
    let pumped = width * r;
    let mut body = Sequential::new()
        .with(alg.conv(width, pumped, 3, seed))
        .with_opt(alg.activation());
    for i in 0..n_extra {
        body = body
            .with(alg.conv(pumped, pumped, 3, seed.wrapping_add(1000 + i as u64)))
            .with_opt(alg.activation());
    }
    body = body.with(alg.conv(pumped, width, 3, seed.wrapping_add(1)));
    Residual::new(body)
}

/// Denoising ERNet with pixel-unshuffle (the paper's `DnERNet-PU`):
/// residual noise prediction over a 2×2-unshuffled feature space.
///
/// Input/output: `[N, channels, H, W]` with `H, W` even.
pub fn dn_ernet_pu(alg: &Algebra, cfg: ErNetConfig, channels: usize, seed: u64) -> Sequential {
    let c = cfg.width;
    let mut body = Sequential::new()
        .with(Box::new(PixelUnshuffle::new(2)))
        .with(alg.conv(channels * 4, c, 3, seed))
        .with_opt(alg.activation());
    for i in 0..cfg.b {
        body = body.with(Box::new(ermodule(
            alg,
            c,
            cfg.r,
            cfg.n_extra,
            seed + 10 * (i as u64 + 1),
        )));
    }
    // Small-weight tail so the global residual starts near the identity.
    let mut tail = alg.conv(c, channels * 4, 3, seed + 2);
    crate::layers::upsample::scale_conv_weights(tail.as_mut(), 0.1);
    body = body.with(tail).with(Box::new(PixelShuffle::new(2)));
    // Global residual: the network predicts the negated noise.
    Sequential::new().with(Box::new(Residual::new(body)))
}

/// Four-times super-resolution ERNet (the paper's `SR4ERNet`):
/// feature extraction, `B` ERModules inside a long skip, then two ×2
/// pixel-shuffle upsampling stages.
///
/// Input `[N, channels, H, W]` → output `[N, channels, 4H, 4W]`.
pub fn sr4_ernet(alg: &Algebra, cfg: ErNetConfig, channels: usize, seed: u64) -> Sequential {
    let c = cfg.width;
    let mut trunk = Sequential::new();
    for i in 0..cfg.b {
        trunk = trunk.with(Box::new(ermodule(
            alg,
            c,
            cfg.r,
            cfg.n_extra,
            seed + 10 * (i as u64 + 1),
        )));
    }
    let mut trunk_tail = alg.conv(c, c, 3, seed + 3);
    crate::layers::upsample::scale_conv_weights(trunk_tail.as_mut(), 0.1);
    trunk = trunk.with(trunk_tail);
    // Zero-init the output tail so the model starts exactly at the
    // bicubic-skip baseline (the tail still receives nonzero gradients).
    let mut tail = alg.conv(c, channels, 3, seed + 6);
    crate::layers::upsample::scale_conv_weights(tail.as_mut(), 0.0);
    Sequential::new()
        .with(alg.conv(channels, c, 3, seed))
        .with_opt(alg.activation())
        .with(Box::new(Residual::new(trunk)))
        // ×2 stage 1
        .with(alg.conv(c, 4 * c, 3, seed + 4))
        .with(Box::new(PixelShuffle::new(2)))
        .with_opt(alg.activation())
        // ×2 stage 2
        .with(alg.conv(c, 4 * c, 3, seed + 5))
        .with(Box::new(PixelShuffle::new(2)))
        .with_opt(alg.activation())
        .with(tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use ringcnn_tensor::prelude::*;

    #[test]
    fn dn_ernet_preserves_shape() {
        for alg in [Algebra::real(), Algebra::ri_fh(2), Algebra::ri_fh(4)] {
            let mut m = dn_ernet_pu(&alg, ErNetConfig::tiny(), 1, 7);
            let x = Tensor::random_uniform(Shape4::new(1, 1, 8, 8), 0.0, 1.0, 1);
            let y = m.forward(&x, false);
            assert_eq!(y.shape(), x.shape(), "{}", alg.label());
        }
    }

    #[test]
    fn sr4_ernet_upscales_four_times() {
        let alg = Algebra::ri_fh(4);
        let mut m = sr4_ernet(&alg, ErNetConfig::tiny(), 1, 9);
        let x = Tensor::random_uniform(Shape4::new(1, 1, 5, 6), 0.0, 1.0, 2);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), Shape4::new(1, 1, 20, 24));
    }

    #[test]
    fn ring_model_has_n_times_fewer_weights() {
        let cfg = ErNetConfig::tiny();
        let mut real = dn_ernet_pu(&Algebra::real(), cfg, 1, 7);
        let mut ring = dn_ernet_pu(&Algebra::ri_fh(4), cfg, 1, 7);
        let real_params = real.num_params() as f64;
        let ring_params = ring.num_params() as f64;
        // Biases are not compressed, so the ratio is slightly below n.
        assert!(
            real_params / ring_params > 3.0,
            "ratio {}",
            real_params / ring_params
        );
    }

    #[test]
    fn ernet_trains_backward_without_panic() {
        let alg = Algebra::ri_fh(2);
        let mut m = dn_ernet_pu(&alg, ErNetConfig::tiny(), 1, 3);
        let x = Tensor::random_uniform(Shape4::new(2, 1, 8, 8), 0.0, 1.0, 3);
        let y = m.forward(&x, true);
        let d = m.backward(&y);
        assert_eq!(d.shape(), x.shape());
    }

    #[test]
    fn config_label() {
        assert_eq!(
            ErNetConfig {
                b: 17,
                r: 3,
                n_extra: 1,
                width: 32
            }
            .label(),
            "B17R3N1"
        );
    }
}
