//! VDSR \[26\] miniature: a plain conv–ReLU stack with a global residual,
//! operating on a pre-upscaled input. The "old-fashioned" SR baseline of
//! Fig. 1 and Table IV.

use crate::algebra_choice::Algebra;
use crate::layers::structure::{Residual, Sequential};

/// Builds a VDSR-style network (depth `d` conv layers, `c` channels).
///
/// Input and output share the same shape; for ×4 SR, feed a bicubic
/// (or similar) pre-upscaled image.
pub fn vdsr(alg: &Algebra, depth: usize, c: usize, channels_io: usize, seed: u64) -> Sequential {
    assert!(depth >= 2, "VDSR needs at least head and tail convolutions");
    let mut body = Sequential::new()
        .with(alg.conv(channels_io, c, 3, seed))
        .with_opt(alg.activation());
    for i in 0..depth.saturating_sub(2) {
        body = body
            .with(alg.conv(c, c, 3, seed + i as u64 + 1))
            .with_opt(alg.activation());
    }
    body = body.with(alg.conv(c, channels_io, 3, seed + 99));
    Sequential::new().with(Box::new(Residual::new(body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use ringcnn_tensor::prelude::*;

    #[test]
    fn vdsr_preserves_shape() {
        let mut m = vdsr(&Algebra::real(), 4, 8, 1, 3);
        let x = Tensor::random_uniform(Shape4::new(1, 1, 8, 8), 0.0, 1.0, 1);
        assert_eq!(m.forward(&x, false).shape(), x.shape());
    }

    #[test]
    fn identity_initialization_bias_is_residual() {
        // With a global residual, a zero-weight body is exactly the
        // identity — this pins the residual wiring independent of the
        // random-init stream.
        let mut m = vdsr(&Algebra::real(), 3, 8, 1, 5);
        m.for_each_layer_mut(&mut |l| crate::layers::upsample::scale_conv_weights(l, 0.0));
        let x = Tensor::random_uniform(Shape4::new(1, 1, 8, 8), 0.0, 1.0, 2);
        let y = m.forward(&x, false);
        assert!(
            y.mse(&x) < 1e-10,
            "zero body must be identity, mse {}",
            y.mse(&x)
        );
        // And the randomly-initialized body is a bounded perturbation of
        // the identity (loose: random init is a worst case).
        let mut m = vdsr(&Algebra::real(), 3, 8, 1, 5);
        let y = m.forward(&x, false);
        assert!(
            y.mse(&x) < 10.0,
            "random-init residual too large, mse {}",
            y.mse(&x)
        );
    }

    #[test]
    #[should_panic(expected = "at least head and tail")]
    fn rejects_too_shallow() {
        let _ = vdsr(&Algebra::real(), 1, 8, 1, 3);
    }
}
