//! FFDNet \[50\] miniature: pixel-unshuffled denoising with a plain conv
//! stack and a tunable noise-level input map. The advanced denoising
//! baseline of Table IV.

use crate::algebra_choice::Algebra;
use crate::layer::Layer;
use crate::layers::shuffle::{PixelShuffle, PixelUnshuffle};
use crate::layers::structure::Sequential;
use ringcnn_tensor::prelude::*;

/// Builds an FFDNet-style denoiser (depth `d`, width `c`).
///
/// The original conditions on a noise-level map; our reproduction trains
/// one model per noise level (the paper's evaluation also fixes σ per
/// scenario), so the map input is dropped — documented in DESIGN.md.
pub fn ffdnet(alg: &Algebra, depth: usize, c: usize, channels_io: usize, seed: u64) -> Sequential {
    assert!(
        depth >= 2,
        "FFDNet needs at least head and tail convolutions"
    );
    let cin = channels_io * 4;
    let mut m = Sequential::new()
        .with(Box::new(PixelUnshuffle::new(2)))
        .with(alg.conv(cin, c, 3, seed))
        .with_opt(alg.activation());
    for i in 0..depth.saturating_sub(2) {
        m = m
            .with(alg.conv(c, c, 3, seed + i as u64 + 1))
            .with_opt(alg.activation());
    }
    m.with(alg.conv(c, cin, 3, seed + 77))
        .with(Box::new(PixelShuffle::new(2)))
}

/// Convenience inference wrapper that checks the even-size requirement.
///
/// # Panics
///
/// Panics if the input height/width are odd.
pub fn denoise(model: &mut Sequential, noisy: &Tensor) -> Tensor {
    let s = noisy.shape();
    assert!(
        s.h % 2 == 0 && s.w % 2 == 0,
        "FFDNet-style models need even spatial sizes"
    );
    model.forward(noisy, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ffdnet_preserves_shape() {
        let mut m = ffdnet(&Algebra::ri_fh(2), 4, 8, 1, 3);
        let x = Tensor::random_uniform(Shape4::new(1, 1, 8, 8), 0.0, 1.0, 1);
        assert_eq!(denoise(&mut m, &x).shape(), x.shape());
    }

    #[test]
    #[should_panic(expected = "even spatial sizes")]
    fn rejects_odd_sizes() {
        let mut m = ffdnet(&Algebra::real(), 3, 8, 1, 3);
        let x = Tensor::zeros(Shape4::new(1, 1, 7, 8));
        let _ = denoise(&mut m, &x);
    }
}
