//! Model zoo: ERNet-style imaging networks, SRResNet/VDSR/FFDNet
//! baselines, and the ResNet-mini classifier of Appendix C.

pub mod ernet;
pub mod ffdnet;
pub mod resnet;
pub mod srresnet;
pub mod vdsr;
