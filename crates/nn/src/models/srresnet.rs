//! SRResNet \[31\] miniature and its complexity-reduction variants, the
//! workload of the paper's motivating Fig. 1 (weight pruning vs DWC vs
//! depth/channel shrinking vs RingCNN).

use crate::algebra_choice::Algebra;
use crate::layers::conv::DepthwiseConv2d;
use crate::layers::shuffle::PixelShuffle;
use crate::layers::structure::{Residual, Sequential};

/// SRResNet configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrResNetConfig {
    /// Residual blocks in the trunk.
    pub blocks: usize,
    /// Feature channels.
    pub channels: usize,
    /// Replace each 3×3 conv with depth-wise 3×3 + point-wise 1×1
    /// (the low-rank DWC baseline of Fig. 1).
    pub depthwise: bool,
}

impl SrResNetConfig {
    /// Small CPU-friendly default (blocks=3, channels=16, dense).
    pub fn tiny() -> Self {
        Self {
            blocks: 3,
            channels: 16,
            depthwise: false,
        }
    }

    /// Depth-reduced variant (shrinks `blocks`, keeps channels).
    #[must_use]
    pub fn with_blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks;
        self
    }

    /// Channel-reduced variant (shrinks `channels`, keeps depth).
    #[must_use]
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Depth-wise-convolution variant.
    #[must_use]
    pub fn with_depthwise(mut self) -> Self {
        self.depthwise = true;
        self
    }
}

fn conv3x3(alg: &Algebra, cfg: &SrResNetConfig, ci: usize, co: usize, seed: u64) -> Sequential {
    if cfg.depthwise {
        // DWC lowering: depth-wise 3×3 then point-wise 1×1. The depth-wise
        // layer is built directly (not through the algebra), so it inherits
        // the algebra's conv backend explicitly.
        let mut dw = Box::new(DepthwiseConv2d::new(ci, 3, seed));
        crate::layer::Layer::set_conv_backend(dw.as_mut(), alg.conv_backend());
        Sequential::new()
            .with(dw)
            .with(alg.conv(ci, co, 1, seed.wrapping_add(500)))
    } else {
        Sequential::new().with(alg.conv(ci, co, 3, seed))
    }
}

/// Builds a ×4 SRResNet miniature over the given algebra.
///
/// Structure: head conv + activation, `blocks` residual blocks inside a
/// long skip, two ×2 pixel-shuffle upsampling stages, tail conv.
pub fn srresnet(alg: &Algebra, cfg: SrResNetConfig, channels_io: usize, seed: u64) -> Sequential {
    let c = cfg.channels;
    let mut trunk = Sequential::new();
    for i in 0..cfg.blocks {
        let s = seed + 100 * (i as u64 + 1);
        let body = Sequential::new()
            .with(Box::new(conv3x3(alg, &cfg, c, c, s)))
            .with_opt(alg.activation())
            .with(Box::new(conv3x3(alg, &cfg, c, c, s + 1)));
        trunk = trunk.with(Box::new(Residual::new(body)));
    }
    trunk = trunk.with(Box::new(conv3x3(alg, &cfg, c, c, seed + 7)));
    Sequential::new()
        .with(Box::new(conv3x3(alg, &cfg, channels_io, c, seed)))
        .with_opt(alg.activation())
        .with(Box::new(Residual::new(trunk)))
        .with(Box::new(conv3x3(alg, &cfg, c, 4 * c, seed + 8)))
        .with(Box::new(PixelShuffle::new(2)))
        .with_opt(alg.activation())
        .with(Box::new(conv3x3(alg, &cfg, c, 4 * c, seed + 9)))
        .with(Box::new(PixelShuffle::new(2)))
        .with_opt(alg.activation())
        .with(Box::new(conv3x3(alg, &cfg, c, channels_io, seed + 10)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use ringcnn_tensor::prelude::*;

    #[test]
    fn srresnet_upscales_by_four() {
        let mut m = srresnet(&Algebra::real(), SrResNetConfig::tiny(), 1, 5);
        let x = Tensor::random_uniform(Shape4::new(1, 1, 6, 4), 0.0, 1.0, 1);
        assert_eq!(m.forward(&x, false).shape(), Shape4::new(1, 1, 24, 16));
    }

    #[test]
    fn depthwise_variant_has_fewer_mults() {
        let mut dense = srresnet(&Algebra::real(), SrResNetConfig::tiny(), 1, 5);
        let mut dwc = srresnet(
            &Algebra::real(),
            SrResNetConfig::tiny().with_depthwise(),
            1,
            5,
        );
        assert!(dwc.mults_per_pixel() < dense.mults_per_pixel());
        // Still runs.
        let x = Tensor::random_uniform(Shape4::new(1, 1, 4, 4), 0.0, 1.0, 2);
        assert_eq!(dwc.forward(&x, false).shape(), Shape4::new(1, 1, 16, 16));
        let _ = dense.forward(&x, false);
    }

    #[test]
    fn ring_variant_matches_shapes() {
        let mut m = srresnet(&Algebra::ri_fh(4), SrResNetConfig::tiny(), 1, 5);
        let x = Tensor::random_uniform(Shape4::new(1, 1, 4, 4), 0.0, 1.0, 3);
        assert_eq!(m.forward(&x, false).shape(), Shape4::new(1, 1, 16, 16));
    }

    #[test]
    fn config_variants() {
        let base = SrResNetConfig::tiny();
        assert_eq!(base.with_blocks(1).blocks, 1);
        assert_eq!(base.with_channels(8).channels, 8);
        assert!(base.with_depthwise().depthwise);
    }
}
