//! Miniature ResNet classifier for the Appendix-C recognition study
//! (ResNet-56 on CIFAR-100 in the paper; a width/depth-scaled stand-in on
//! the synthetic pattern dataset here — see DESIGN.md §3).
//!
//! Downsampling uses pixel-unshuffle + 1×1 channel projection instead of
//! strided convolution (our conv substrate is stride-1 only); this keeps
//! the residual topology and parameter scaling of the original.

use crate::algebra_choice::Algebra;
use crate::layers::dense::{Dense, GlobalAvgPool};
use crate::layers::shuffle::PixelUnshuffle;
use crate::layers::structure::{Residual, Sequential};

/// ResNet-mini configuration.
#[derive(Clone, Copy, Debug)]
pub struct ResNetConfig {
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
    /// Channel widths per stage (each stage halves the resolution).
    pub stage_channels: [usize; 2],
    /// Number of classes.
    pub classes: usize,
}

impl ResNetConfig {
    /// Tiny default: 2 stages of 2 blocks (8/16 channels), 10 classes.
    pub fn tiny() -> Self {
        Self {
            blocks_per_stage: 2,
            stage_channels: [8, 16],
            classes: 10,
        }
    }
}

/// Builds the classifier. Input `[N, channels_in, H, W]` (H, W divisible
/// by 2), output logits `[N, classes, 1, 1]`.
pub fn resnet_mini(alg: &Algebra, cfg: ResNetConfig, channels_in: usize, seed: u64) -> Sequential {
    let c0 = cfg.stage_channels[0];
    let c1 = cfg.stage_channels[1];
    let mut m = Sequential::new()
        .with(alg.conv(channels_in, c0, 3, seed))
        .with_opt(alg.activation());
    for i in 0..cfg.blocks_per_stage {
        m = m.with(Box::new(basic_block(alg, c0, seed + 10 + i as u64)));
    }
    // Stage transition: ×½ resolution, c0·4 → c1 channels.
    m = m
        .with(Box::new(PixelUnshuffle::new(2)))
        .with(alg.conv(c0 * 4, c1, 1, seed + 50))
        .with_opt(alg.activation());
    for i in 0..cfg.blocks_per_stage {
        m = m.with(Box::new(basic_block(alg, c1, seed + 60 + i as u64)));
    }
    m.with(Box::new(GlobalAvgPool::new()))
        .with(Box::new(Dense::new(c1, cfg.classes, seed + 99)))
}

fn basic_block(alg: &Algebra, c: usize, seed: u64) -> Residual {
    Residual::new(
        Sequential::new()
            .with(alg.conv(c, c, 3, seed))
            .with_opt(alg.activation())
            .with(alg.conv(c, c, 3, seed + 1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use ringcnn_tensor::prelude::*;

    #[test]
    fn logits_shape() {
        let mut m = resnet_mini(&Algebra::real(), ResNetConfig::tiny(), 3, 5);
        let x = Tensor::random_uniform(Shape4::new(2, 3, 8, 8), 0.0, 1.0, 1);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), Shape4::new(2, 10, 1, 1));
    }

    #[test]
    fn ring_variant_runs_forward_and_backward() {
        let mut m = resnet_mini(&Algebra::ri_fh(4), ResNetConfig::tiny(), 4, 6);
        let x = Tensor::random_uniform(Shape4::new(1, 4, 8, 8), 0.0, 1.0, 2);
        let y = m.forward(&x, true);
        let d = m.backward(&y);
        assert_eq!(d.shape(), x.shape());
    }

    #[test]
    fn ring_classifier_compresses_weights() {
        let mut real = resnet_mini(&Algebra::real(), ResNetConfig::tiny(), 4, 5);
        let mut ring = resnet_mini(&Algebra::ri_fh(2), ResNetConfig::tiny(), 4, 5);
        assert!(real.num_params() as f64 / ring.num_params() as f64 > 1.6);
    }
}
