//! Optimizers: Adam and SGD-with-momentum, visiting layer parameters
//! through [`crate::layer::Layer::visit_params`].

use crate::layer::Layer;

/// Adam optimizer (Kingma & Ba) with per-parameter moment state.
///
/// State is keyed by visiting order, which is stable for a fixed model
/// structure.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step using the gradients currently accumulated
    /// in the model, then leaves gradients untouched (call
    /// [`Layer::zero_grads`] before the next accumulation).
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m_all, v_all) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |group| {
            if m_all.len() <= idx {
                m_all.push(vec![0.0; group.values.len()]);
                v_all.push(vec![0.0; group.values.len()]);
            }
            let m = &mut m_all[idx];
            let v = &mut v_all[idx];
            assert_eq!(
                m.len(),
                group.values.len(),
                "model structure changed under Adam"
            );
            for i in 0..group.values.len() {
                let g = group.grads[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                group.values[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD; `momentum = 0` disables the velocity term.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step.
    pub fn step(&mut self, model: &mut dyn Layer) {
        let (lr, mu) = (self.lr, self.momentum);
        let vel = &mut self.velocity;
        let mut idx = 0usize;
        model.visit_params(&mut |group| {
            if vel.len() <= idx {
                vel.push(vec![0.0; group.values.len()]);
            }
            let v = &mut vel[idx];
            for i in 0..group.values.len() {
                v[i] = mu * v[i] + group.grads[i];
                group.values[i] -= lr * v[i];
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ParamGroup;
    use ringcnn_tensor::tensor::Tensor;

    struct Quad {
        w: Vec<f32>,
        g: Vec<f32>,
    }

    impl Layer for Quad {
        fn name(&self) -> String {
            "quad".into()
        }
        fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
            input.clone()
        }
        fn forward_infer(&self, input: &Tensor) -> Tensor {
            input.clone()
        }
        fn backward(&mut self, dout: &Tensor) -> Tensor {
            dout.clone()
        }
        fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamGroup<'_>)) {
            visitor(ParamGroup {
                values: &mut self.w,
                grads: &mut self.g,
            });
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Minimizes f(w) = ½‖w‖² whose gradient is w itself.
    fn run(optimizer: &mut dyn FnMut(&mut Quad), steps: usize) -> f32 {
        let mut layer = Quad {
            w: vec![1.0, -2.0, 3.0],
            g: vec![0.0; 3],
        };
        for _ in 0..steps {
            layer.g.copy_from_slice(&layer.w);
            optimizer(&mut layer);
        }
        layer.w.iter().map(|v| v * v).sum::<f32>()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1);
        let final_norm = run(&mut |l| adam.step(l), 200);
        assert!(final_norm < 1e-4, "‖w‖² = {final_norm}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut sgd = Sgd::new(0.05, 0.9);
        let final_norm = run(&mut |l| sgd.step(l), 200);
        assert!(final_norm < 1e-4, "‖w‖² = {final_norm}");
    }

    #[test]
    fn adam_state_is_per_parameter() {
        let mut adam = Adam::new(0.01);
        let mut layer = Quad {
            w: vec![1.0, 1.0],
            g: vec![1.0, 0.0],
        };
        adam.step(&mut layer);
        // Only the first parameter should move (second has zero grad).
        assert!(layer.w[0] < 1.0);
        assert_eq!(layer.w[1], 1.0);
    }
}
