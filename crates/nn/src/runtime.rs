//! The multi-threaded inference runtime: tile-parallel forwards and
//! batch execution over a prepared, shared model.
//!
//! This is the CPU realization of the paper's block-based inference flow
//! (§V): the input image is split into core tiles, every tile is
//! extended by a halo of at least the model's receptive-field radius,
//! the halo-extended tiles run through the network *concurrently* on the
//! thread pool, and the core regions are stitched back together. With a
//! sufficient halo the stitched output is **bit-identical** to the
//! whole-image pass for the dense kernels and within float rounding for
//! the transform engine — the determinism suite in
//! `tests/runtime_parallel.rs` enforces it.
//!
//! Threading model: [`BatchRunner::new`] takes the model exclusively
//! once, pre-builds every cached inference kernel
//! ([`Layer::prepare_inference`] — transform plans, weight expansions),
//! and then shares the model immutably across tile/frame workers via
//! [`Layer::forward_infer`]. Workers never mutate the model, so no plan
//! rebuild can race. The pool size comes from `RINGCNN_THREADS`
//! (see the `rayon` shim; 1 = fully sequential).

use crate::layer::Layer;
use crate::layers::structure::{Residual, Sequential};
use crate::layers::upsample::UpsampleResidual;
use rayon::prelude::*;
use ringcnn_tensor::prelude::*;
use ringcnn_tensor::tile::{tile_grid, Window};

/// Greatest common divisor (positive inputs).
fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple (positive inputs).
fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Spatial facts the tiled runtime needs about a model, derived by
/// walking its layer tree once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelTopo {
    /// Receptive-field radius in input pixels: the minimum halo for
    /// bit-exact tile stitching.
    pub radius: usize,
    /// Tile sizes and offsets must be multiples of this (the resolution
    /// granularity imposed by pixel-unshuffle stages).
    pub granularity: usize,
    /// Output pixels per input pixel as a reduced `(num, den)` fraction
    /// (`(4, 1)` for ×4 SR, `(1, 1)` for denoisers).
    pub scale: (usize, usize),
}

/// Incremental [`ModelTopo`] accumulator: visit the model's leaf layers
/// in execution order, reporting each one's kernel radius and spatial
/// scale, and [`TopoBuilder::finish`] folds them into the whole-model
/// receptive radius / granularity / output scale.
///
/// This is the walk state behind [`model_topology`], exposed so other
/// model representations — notably the integer pipeline of
/// `ringcnn-quant`, whose layers are not [`Layer`] trait objects — can
/// derive the identical topology and run on the same tiled runtime.
pub struct TopoBuilder {
    /// Input pixels per current-resolution pixel, as a reduced fraction.
    ipp_num: usize,
    ipp_den: usize,
    radius: f64,
    granularity: usize,
}

impl Default for TopoBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopoBuilder {
    /// Starts a walk at the model input (full resolution, zero radius).
    pub fn new() -> Self {
        Self {
            ipp_num: 1,
            ipp_den: 1,
            radius: 0.0,
            granularity: 1,
        }
    }

    fn ipp(&self) -> f64 {
        self.ipp_num as f64 / self.ipp_den as f64
    }

    /// Adds a receptive radius measured in *current-resolution* pixels
    /// (converted to input pixels at the walk's current scale). Use for
    /// non-kernel neighborhoods such as a bicubic skip's 2-pixel reach.
    pub fn add_radius_here(&mut self, radius: f64) {
        self.radius += radius * self.ipp();
    }

    /// Applies a layer's spatial scale `num/den` (2/1 for ×2 pixel
    /// shuffle, 1/2 for unshuffle).
    pub fn apply_scale(&mut self, (num, den): (usize, usize)) {
        // A layer scaling resolution by num/den divides input-pixels-per-
        // feature-pixel by num/den.
        self.ipp_num *= den;
        self.ipp_den *= num;
        let g = gcd(self.ipp_num, self.ipp_den);
        self.ipp_num /= g;
        self.ipp_den /= g;
        // A tile of t input pixels spans t·den/num feature pixels at the
        // new resolution; reduced, that needs num' | t.
        self.granularity = lcm(self.granularity, self.ipp_num);
    }

    /// Visits one leaf layer: its kernel radius (own-input pixels) and
    /// its spatial scale.
    pub fn leaf(&mut self, kernel_radius: usize, scale: (usize, usize)) {
        self.add_radius_here(kernel_radius as f64);
        self.apply_scale(scale);
    }

    /// Folds the walk into the model topology.
    pub fn finish(&self) -> ModelTopo {
        ModelTopo {
            radius: self.radius.ceil() as usize,
            granularity: self.granularity,
            // Output pixels per input pixel = 1 / ipp.
            scale: (self.ipp_den, self.ipp_num),
        }
    }
}

fn topo_visit(walk: &mut TopoBuilder, layer: &mut dyn Layer) {
    if let Some(seq) = layer.as_any_mut().downcast_mut::<Sequential>() {
        for l in seq.layers_mut() {
            topo_visit(walk, l.as_mut());
        }
        return;
    }
    if let Some(res) = layer.as_any_mut().downcast_mut::<Residual>() {
        // The skip path is pointwise; only the body reads neighbors.
        for l in res.body_mut().layers_mut() {
            topo_visit(walk, l.as_mut());
        }
        return;
    }
    if let Some(ur) = layer.as_any_mut().downcast_mut::<UpsampleResidual>() {
        // The bicubic skip reaches 2 source pixels (cf. the esim
        // receptive_halo walk); the body carries the scale change.
        walk.add_radius_here(2.0);
        for l in ur.body_mut().layers_mut() {
            topo_visit(walk, l.as_mut());
        }
        return;
    }
    walk.leaf(layer.kernel_radius(), layer.spatial_scale());
}

/// Derives the [`ModelTopo`] of a model by walking its layer tree
/// (mutable access is needed only for downcasting; nothing is changed).
pub fn model_topology(model: &mut Sequential) -> ModelTopo {
    let mut walk = TopoBuilder::new();
    for l in model.layers_mut() {
        topo_visit(&mut walk, l.as_mut());
    }
    walk.finish()
}

/// The shared-state inference contract the tiled runtime executes: a
/// model that can be prepared once (exclusive access), then run
/// concurrently through `&self` from many pool threads, and that knows
/// its own spatial topology.
///
/// [`Sequential`] implements it by delegating to the [`Layer`] API;
/// `ringcnn_quant::QuantizedModel` implements it over the integer
/// pipeline, which is what lets [`BatchRunner`] run quantized inference
/// tile-parallel with bit-exact stitching.
pub trait InferenceModel: Send + Sync {
    /// Pre-builds every cached inference kernel so subsequent
    /// [`InferenceModel::forward_infer`] calls never rebuild state.
    fn prepare_inference(&mut self);

    /// Shared-state inference forward (no mutation; many threads may
    /// call this concurrently).
    fn forward_infer(&self, input: &Tensor) -> Tensor;

    /// Output channel count given the input channel count.
    fn out_channels(&self, in_channels: usize) -> usize;

    /// The model's spatial topology (receptive radius, granularity,
    /// output scale). Mutable access is for downcasting walks only.
    fn topology(&mut self) -> ModelTopo;
}

impl InferenceModel for Sequential {
    fn prepare_inference(&mut self) {
        Layer::prepare_inference(self);
    }

    fn forward_infer(&self, input: &Tensor) -> Tensor {
        Layer::forward_infer(self, input)
    }

    fn out_channels(&self, in_channels: usize) -> usize {
        Layer::out_channels(self, in_channels)
    }

    fn topology(&mut self) -> ModelTopo {
        model_topology(self)
    }
}

/// Tile-partitioning knobs for [`BatchRunner::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileConfig {
    /// Core tile size in input pixels (rounded up to the model's
    /// granularity; edge tiles shrink).
    pub tile: usize,
    /// Halo width in input pixels; `None` selects the model's receptive
    /// radius rounded up to the granularity — the smallest exact halo.
    pub halo: Option<usize>,
}

impl Default for TileConfig {
    fn default() -> Self {
        // 64-pixel cores: the paper's block-based flow operates at
        // 16–64; larger cores amortize the halo recompute overhead
        // (overhead ≈ (1 + 2h/t)² − 1) while still exposing enough tiles
        // for the pool.
        Self {
            tile: 64,
            halo: None,
        }
    }
}

impl TileConfig {
    /// A config with an explicit core tile size.
    pub fn with_tile(tile: usize) -> Self {
        Self { tile, halo: None }
    }

    /// Pins the halo width (must be ≥ the model's receptive radius for
    /// exact stitching; smaller values trade accuracy for speed).
    #[must_use]
    pub fn with_halo(mut self, halo: usize) -> Self {
        self.halo = Some(halo);
        self
    }
}

/// A prepared model shared across the thread pool: tile-parallel single
/// frames and parallel batches, with every cached inference kernel
/// (transform plans, weight expansions) built exactly once up front.
///
/// # Examples
///
/// ```
/// use ringcnn_nn::prelude::*;
/// use ringcnn_nn::runtime::{BatchRunner, TileConfig};
/// use ringcnn_algebra::ring::RingKind;
/// use ringcnn_tensor::prelude::*;
///
/// let alg = Algebra::with_fcw(RingKind::Rh(4));
/// let mut model = ringcnn_nn::models::vdsr::vdsr(&alg, 3, 8, 1, 7);
/// let runner = BatchRunner::new(&mut model);
/// let x = Tensor::random_uniform(Shape4::new(1, 1, 32, 32), 0.0, 1.0, 1);
/// let tiled = runner.with_tile(TileConfig::with_tile(16)).run(&x);
/// assert_eq!(tiled.shape(), x.shape());
/// ```
pub struct BatchRunner<'m> {
    model: &'m dyn InferenceModel,
    topo: ModelTopo,
    tile: TileConfig,
}

impl<'m> BatchRunner<'m> {
    /// Prepares the model for shared inference: pre-builds cached
    /// kernels and derives the tiling topology. The exclusive borrow
    /// happens here, once; everything after runs through `&self`.
    /// Accepts any [`InferenceModel`] — float [`Sequential`]s and the
    /// quantized integer pipeline alike.
    pub fn new<M: InferenceModel>(model: &'m mut M) -> Self {
        model.prepare_inference();
        let topo = model.topology();
        Self {
            model,
            topo,
            tile: TileConfig::default(),
        }
    }

    /// Sets the tile configuration (builder style).
    #[must_use]
    pub fn with_tile(mut self, tile: TileConfig) -> Self {
        self.tile = tile;
        self
    }

    /// The derived model topology.
    pub fn topo(&self) -> ModelTopo {
        self.topo
    }

    /// The effective halo width (configured or auto-derived).
    pub fn halo(&self) -> usize {
        self.tile
            .halo
            .unwrap_or_else(|| self.topo.radius.next_multiple_of(self.topo.granularity))
    }

    /// Whole-image inference forward (no tiling; the baseline the tiled
    /// path is compared against).
    pub fn run_whole(&self, input: &Tensor) -> Tensor {
        self.model.forward_infer(input)
    }

    /// The tile grid [`Self::run`] would use for an `h × w` image, or
    /// `None` when the whole-image path is taken instead.
    ///
    /// Degenerate grids are rejected here rather than executed: an image
    /// that fits one tile (both dimensions ≤ the effective tile size)
    /// and 1-pixel-wide/-tall strips both go whole-image. Strip inputs
    /// would otherwise shatter into tiles whose halo re-computation
    /// dwarfs their core (overhead `(1 + 2h/t)² − 1` with a 1-pixel
    /// core), all to parallelize an image that is already tiny along the
    /// other axis.
    pub fn plan_grid(&self, h: usize, w: usize) -> Option<Vec<Window>> {
        let g = self.topo.granularity;
        let tile = self.tile.tile.next_multiple_of(g).max(g);
        if (h <= tile && w <= tile) || h.min(w) <= 1 {
            return None;
        }
        let grid = tile_grid(h, w, tile);
        debug_assert!(grid.len() > 1);
        Some(grid)
    }

    /// Tile-parallel inference: splits every batch item into
    /// halo-extended tiles, runs all tiles across the thread pool, and
    /// stitches the cores. Falls back to [`Self::run_whole`] when the
    /// image yields a single tile.
    ///
    /// # Panics
    ///
    /// Panics if the input height/width are not multiples of the model's
    /// granularity (pixel-unshuffle parity).
    pub fn run(&self, input: &Tensor) -> Tensor {
        let s = input.shape();
        let g = self.topo.granularity;
        assert!(
            s.h % g == 0 && s.w % g == 0,
            "input {s} not aligned to the model granularity {g}"
        );
        let halo = self.halo();
        assert!(
            halo % g == 0,
            "halo {halo} not aligned to the model granularity {g}"
        );
        let Some(grid) = self.plan_grid(s.h, s.w) else {
            return self.run_whole(input);
        };
        let (sn, sd) = self.topo.scale;
        let out_c = self.model.out_channels(s.c);
        let mut out = Tensor::zeros(Shape4::new(s.n, out_c, s.h * sn / sd, s.w * sn / sd));

        // Halo windows are clipped at the true image border (never
        // zero-extended past it): a tile edge that coincides with the
        // image edge gets the *per-layer* zero padding of whole-image
        // inference, which is what makes border pixels exact too — the
        // improvement over the block flow in `ringcnn_esim::blocks`,
        // whose fixed-size zero halos make border pixels approximate.
        let extended = |core: &Window| -> Window {
            let y0 = (core.y0 - halo as isize).max(0);
            let x0 = (core.x0 - halo as isize).max(0);
            let y1 = (core.y0 + core.h as isize + halo as isize).min(s.h as isize);
            let x1 = (core.x0 + core.w as isize + halo as isize).min(s.w as isize);
            Window::new(y0, x0, (y1 - y0) as usize, (x1 - x0) as usize)
        };

        // One task per (batch item, tile); all tasks fan out at once.
        // The caller's span context is captured *before* the fan-out:
        // pool threads have no ambient span, so each tile task re-roots
        // its "tile" span under the request's kernel span explicitly.
        let parent = ringcnn_trace::span::current();
        let tasks: Vec<(usize, Window)> = (0..s.n)
            .flat_map(|n| grid.iter().map(move |w| (n, *w)))
            .collect();
        let results: Vec<Tensor> = tasks
            .par_iter()
            .map(|&(n, core)| {
                let ext = extended(&core);
                let span = parent.map(|p| ringcnn_trace::span::span_in(p, "tile"));
                if let Some(sp) = &span {
                    sp.set_args(ext.h as u64, ext.w as u64);
                }
                let tile_out = self.model.forward_infer(&input.extract_window(n, ext));
                // Guard the topology walk against models that are not
                // spatially uniform (e.g. global pooling + dense heads):
                // their output does not scale with the tile, which the
                // walk cannot see — fail with the real reason instead of
                // a stitching bounds panic.
                let t = tile_out.shape();
                assert_eq!(
                    (t.h, t.w),
                    (ext.h * sn / sd, ext.w * sn / sd),
                    "model is not tileable: a {}×{} tile produced a {}×{} output \
                     (expected scale {}/{}); spatially non-uniform layers such as \
                     global pooling cannot run block-based inference",
                    ext.h,
                    ext.w,
                    t.h,
                    t.w,
                    sn,
                    sd
                );
                tile_out
            })
            .collect();

        for ((n, core), tile_out) in tasks.into_iter().zip(results) {
            // Crop the core at output scale and stitch.
            let ext = extended(&core);
            let src = Window::new(
                ((core.y0 - ext.y0) as usize * sn / sd) as isize,
                ((core.x0 - ext.x0) as usize * sn / sd) as isize,
                core.h * sn / sd,
                core.w * sn / sd,
            );
            out.paste_window(
                n,
                core.y0 as usize * sn / sd,
                core.x0 as usize * sn / sd,
                &tile_out,
                src,
            );
        }
        out
    }

    /// Runs a batch of independent frames across the pool (one task per
    /// frame, whole-image each): the plan-reuse path for streams of
    /// small frames where tiling would not pay off.
    pub fn run_batch(&self, frames: &[Tensor]) -> Vec<Tensor> {
        let parent = ringcnn_trace::span::current();
        frames
            .par_iter()
            .map(|f| {
                let span = parent.map(|p| ringcnn_trace::span::span_in(p, "frame"));
                if let Some(sp) = &span {
                    sp.set_args(f.shape().h as u64, f.shape().w as u64);
                }
                self.model.forward_infer(f)
            })
            .collect()
    }
}

/// One-shot convenience: prepares `model`, then runs a tile-parallel
/// forward with `cfg`.
pub fn tiled_forward<M: InferenceModel>(model: &mut M, input: &Tensor, cfg: TileConfig) -> Tensor {
    BatchRunner::new(model).with_tile(cfg).run(input)
}

/// The number of threads the inference pool runs (1 = sequential; set
/// `RINGCNN_THREADS` before the first parallel call to control it).
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra_choice::Algebra;
    use crate::models::ffdnet::ffdnet;
    use crate::models::srresnet::{srresnet, SrResNetConfig};
    use crate::models::vdsr::vdsr;
    use ringcnn_algebra::ring::RingKind;

    #[test]
    fn topology_of_plain_conv_stack() {
        // VDSR depth 3: three 3×3 convs at full resolution → radius 3.
        let mut m = vdsr(&Algebra::real(), 3, 8, 1, 1);
        let topo = model_topology(&mut m);
        assert_eq!(
            topo,
            ModelTopo {
                radius: 3,
                granularity: 1,
                scale: (1, 1)
            }
        );
    }

    #[test]
    fn topology_tracks_unshuffle_resolution() {
        // FFDNet depth 3: unshuffle(2), three 3×3 convs at half
        // resolution (radius 2 input px each), shuffle(2) → radius 6,
        // granularity 2, scale 1.
        let mut m = ffdnet(&Algebra::real(), 3, 8, 1, 1);
        let topo = model_topology(&mut m);
        assert_eq!(
            topo,
            ModelTopo {
                radius: 6,
                granularity: 2,
                scale: (1, 1)
            }
        );
    }

    #[test]
    fn topology_of_sr_model_reports_scale() {
        let mut m = srresnet(
            &Algebra::real(),
            SrResNetConfig::tiny().with_blocks(1),
            1,
            1,
        );
        let topo = model_topology(&mut m);
        assert_eq!(topo.scale, (4, 1), "×4 SR model");
        assert!(topo.radius > 0);
    }

    #[test]
    #[should_panic(expected = "model is not tileable")]
    fn non_tileable_model_fails_with_clear_message() {
        // Classification heads (global pooling + dense) are spatially
        // non-uniform: the topology walk cannot represent them, so the
        // runner must fail with the real reason, not a stitching panic.
        use crate::models::resnet::{resnet_mini, ResNetConfig};
        let mut m = resnet_mini(&Algebra::real(), ResNetConfig::tiny(), 1, 3);
        let x = Tensor::random_uniform(Shape4::new(1, 1, 16, 16), 0.0, 1.0, 4);
        let _ = tiled_forward(&mut m, &x, TileConfig::with_tile(8));
    }

    #[test]
    fn tiled_forward_matches_whole_image() {
        let alg = Algebra::with_fcw(RingKind::Rh(4));
        let mut m = vdsr(&alg, 3, 8, 1, 5);
        let x = Tensor::random_uniform(Shape4::new(2, 1, 24, 20), 0.0, 1.0, 6);
        let runner = BatchRunner::new(&mut m).with_tile(TileConfig::with_tile(8));
        let whole = runner.run_whole(&x);
        let tiled = runner.run(&x);
        let max = whole
            .as_slice()
            .iter()
            .zip(tiled.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max <= 1e-6, "tiled vs whole deviates by {max}");
    }

    #[test]
    fn run_batch_matches_individual_forwards() {
        let mut m = vdsr(&Algebra::real(), 3, 8, 1, 9);
        let frames: Vec<Tensor> = (0..5)
            .map(|i| Tensor::random_uniform(Shape4::new(1, 1, 10, 10), 0.0, 1.0, 50 + i))
            .collect();
        let runner = BatchRunner::new(&mut m);
        let batched = runner.run_batch(&frames);
        for (f, b) in frames.iter().zip(&batched) {
            assert_eq!(runner.run_whole(f).as_slice(), b.as_slice());
        }
    }

    #[test]
    fn single_tile_image_falls_back_to_whole() {
        let mut m = vdsr(&Algebra::real(), 3, 8, 1, 11);
        let x = Tensor::random_uniform(Shape4::new(1, 1, 8, 8), 0.0, 1.0, 12);
        let runner = BatchRunner::new(&mut m); // default 64-px tiles
        assert_eq!(runner.run(&x).as_slice(), runner.run_whole(&x).as_slice());
    }

    #[test]
    fn degenerate_shapes_take_the_whole_image_path() {
        let mut m = vdsr(&Algebra::real(), 3, 8, 1, 5);
        let runner = BatchRunner::new(&mut m).with_tile(TileConfig::with_tile(8));
        // One-tile images and 1-pixel strips plan no grid…
        for (h, w) in [(8, 8), (8, 1), (1, 8), (128, 1), (1, 128), (1, 1), (40, 1)] {
            assert!(
                runner.plan_grid(h, w).is_none(),
                "{h}×{w} must go whole-image"
            );
        }
        // …while genuinely tileable images do.
        for (h, w) in [(16, 16), (9, 16), (2, 40)] {
            assert!(runner.plan_grid(h, w).is_some(), "{h}×{w} must tile");
        }
    }

    #[test]
    fn strip_inputs_are_bit_exact_for_every_backend() {
        // Regression: 1-pixel-wide/-tall inputs and sub-tile images used
        // to shatter into degenerate tile grids; they must now match the
        // whole-image pass bit for bit (they *are* the whole-image pass).
        for backend in crate::backend::ConvBackend::all() {
            let alg = Algebra::with_fcw(RingKind::Rh(4)).with_backend(backend);
            let mut m = vdsr(&alg, 3, 8, 1, 5);
            let runner = BatchRunner::new(&mut m).with_tile(TileConfig::with_tile(8));
            for (h, w) in [(40usize, 1usize), (1, 40), (1, 1), (7, 7)] {
                let x = Tensor::random_uniform(Shape4::new(1, 1, h, w), 0.0, 1.0, 21);
                assert_eq!(
                    runner.run(&x).as_slice(),
                    runner.run_whole(&x).as_slice(),
                    "{h}×{w} via {backend}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn rejects_misaligned_input() {
        let mut m = ffdnet(&Algebra::real(), 3, 8, 1, 13);
        let x = Tensor::zeros(Shape4::new(1, 1, 9, 8)); // odd height
        let _ = tiled_forward(&mut m, &x, TileConfig::with_tile(4));
    }
}
