//! Published competitor numbers (cited constants) and the comparison
//! tables against them: Table VII (Diffy) and Table VIII
//! (SparTen / TIE / CirCNN).
//!
//! Competitor silicon cannot be re-synthesized here; the paper's own
//! comparisons rely on the numbers their publications report, which we
//! hardcode with provenance. Our side of each table comes from the
//! analytical model (`accelerator`/`energy`).

use crate::accelerator::{layout_report, AcceleratorConfig};
use crate::energy::{at_clock, operating_point};
use crate::params::TechParams;
use serde::{Deserialize, Serialize};

/// A row of Table VIII: sparsity-accelerator comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SparsityAcceleratorRow {
    /// Design name.
    pub name: String,
    /// Sparsity approach.
    pub approach: String,
    /// Compression ratio exploited.
    pub compression: String,
    /// Equivalent energy efficiency, TOPS/W (synthesis level).
    pub equivalent_tops_per_watt: f64,
    /// Source of the number.
    pub provenance: String,
}

/// Published constants (from the RingCNN paper text and the cited
/// publications).
pub mod published {
    /// SparTen \[16\] physical efficiency on 45 nm (paper §I).
    pub const SPARTEN_PHYSICAL_TOPS_W: f64 = 0.43;
    /// SparTen equivalent efficiency after sparsity (paper §VI-C).
    pub const SPARTEN_EQUIVALENT_TOPS_W: f64 = 2.7;
    /// CirCNN \[13\] equivalent efficiency at 66× compression (§VI-C).
    pub const CIRCNN_EQUIVALENT_TOPS_W: f64 = 10.0;
    /// CirCNN compression ratio (AlexNet, §I).
    pub const CIRCNN_COMPRESSION: f64 = 66.0;
    /// eRingCNN equivalent efficiency range quoted at synthesis level
    /// (§VI-C): 19.1–28.4 TOPS/W.
    pub const ERINGCNN_SYNTH_RANGE: (f64, f64) = (19.1, 28.4);
    /// Energy-efficiency gains over Diffy at FFDNet-level Full-HD 20 fps
    /// (§VI-C, Table VII): n2 = 2.71×, n4 = 4.59×.
    pub const VS_DIFFY: (f64, f64) = (2.71, 4.59);
    /// Diffy operating clock for the Table VII comparison.
    pub const DIFFY_COMPARISON_CLOCK_HZ: f64 = 167.0e6;
    /// TSMC 40 vs 65 nm scaling used to project Diffy (footnote 1):
    /// 2.35× gate density, 0.5× power at equal speed.
    pub const NM65_TO_40_DENSITY: f64 = 2.35;
    /// Power scaling 65 nm → 40 nm.
    pub const NM65_TO_40_POWER: f64 = 0.5;
}

/// Generates Table VIII: our modeled rows plus cited competitor rows.
pub fn table8(t: &TechParams) -> Vec<SparsityAcceleratorRow> {
    let mut rows = vec![
        SparsityAcceleratorRow {
            name: "SparTen".into(),
            approach: "natural (unstructured)".into(),
            compression: "~6x activations+weights".into(),
            equivalent_tops_per_watt: published::SPARTEN_EQUIVALENT_TOPS_W,
            provenance: "MICRO'19 [16], as cited in RingCNN §VI-C".into(),
        },
        SparsityAcceleratorRow {
            name: "TIE (CONV layers)".into(),
            approach: "low-rank (tensor train)".into(),
            compression: "low on CONV".into(),
            equivalent_tops_per_watt: f64::NAN,
            provenance: "ISCA'19 [12]; RingCNN reports qualitative CONV inefficiency".into(),
        },
        SparsityAcceleratorRow {
            name: "CirCNN".into(),
            approach: "full-rank (block-circulant)".into(),
            compression: format!("{}x", published::CIRCNN_COMPRESSION),
            equivalent_tops_per_watt: published::CIRCNN_EQUIVALENT_TOPS_W,
            provenance: "MICRO'17 [13], as cited in RingCNN §VI-C".into(),
        },
    ];
    for cfg in [
        AcceleratorConfig::eringcnn_n2(),
        AcceleratorConfig::eringcnn_n4(),
    ] {
        // Synthesis-level comparison: conv engines dominate; use engine
        // power as the synthesis proxy (the paper compares synthesis
        // results because competitors only report those).
        let report = layout_report(&cfg, t);
        let engine_power = report.breakdown[0].power_w;
        rows.push(SparsityAcceleratorRow {
            name: cfg.name.clone(),
            approach: "algebraic (ring tensors)".into(),
            compression: format!("{}x", cfg.n),
            equivalent_tops_per_watt: report.tops_equivalent / engine_power,
            provenance: "this model (synthesis proxy: conv engines)".into(),
        });
    }
    rows
}

/// A row of Table VII: computational-imaging accelerator comparison at
/// the FFDNet-level Full-HD 20 fps target.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiffyComparisonRow {
    /// Design name.
    pub name: String,
    /// Power at the operating point, W.
    pub power_w: f64,
    /// Energy per pixel, nJ.
    pub nj_per_pixel: f64,
    /// Energy efficiency relative to Diffy.
    pub efficiency_vs_diffy: f64,
}

/// Generates Table VII. The Diffy energy rate is back-derived from the
/// paper's published ratios (its RTL is not available); our two rows are
/// model outputs, so the *ratio between them* is the reproduced claim.
pub fn table7(t: &TechParams) -> Vec<DiffyComparisonRow> {
    let clock = published::DIFFY_COMPARISON_CLOCK_HZ;
    let pixels_per_second = 1920.0 * 1080.0 * 20.0;
    // FFDNet-level equivalent complexity at Full-HD 20 fps with the
    // engines at 167 MHz: mults/pixel = macs/s ÷ pixel rate.
    let n2 = at_clock(&AcceleratorConfig::eringcnn_n2(), clock);
    let mults_per_pixel = n2.equivalent_macs_per_cycle() as f64 * clock / pixels_per_second;
    let p2 = operating_point(&n2, mults_per_pixel, t);
    let n4 = at_clock(&AcceleratorConfig::eringcnn_n4(), clock);
    let p4 = operating_point(&n4, mults_per_pixel, t);
    // Diffy anchor: paper ratio 2.71× against our n2 point.
    let diffy_nj = p2.nj_per_pixel * published::VS_DIFFY.0;
    vec![
        DiffyComparisonRow {
            name: "Diffy (projected 40 nm)".into(),
            power_w: diffy_nj * 1e-9 * pixels_per_second,
            nj_per_pixel: diffy_nj,
            efficiency_vs_diffy: 1.0,
        },
        DiffyComparisonRow {
            name: "eRingCNN-n2 @167 MHz".into(),
            power_w: p2.nj_per_pixel * 1e-9 * pixels_per_second,
            nj_per_pixel: p2.nj_per_pixel,
            efficiency_vs_diffy: diffy_nj / p2.nj_per_pixel,
        },
        DiffyComparisonRow {
            name: "eRingCNN-n4 @167 MHz".into(),
            power_w: p4.nj_per_pixel * 1e-9 * pixels_per_second,
            nj_per_pixel: p4.nj_per_pixel,
            efficiency_vs_diffy: diffy_nj / p4.nj_per_pixel,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TechParams {
        TechParams::tsmc40()
    }

    #[test]
    fn table8_shows_algebraic_sparsity_winning() {
        let rows = table8(&t());
        let ours_min = rows
            .iter()
            .filter(|r| r.name.starts_with("eRingCNN"))
            .map(|r| r.equivalent_tops_per_watt)
            .fold(f64::INFINITY, f64::min);
        assert!(ours_min > published::SPARTEN_EQUIVALENT_TOPS_W * 3.0);
        assert!(ours_min > published::CIRCNN_EQUIVALENT_TOPS_W);
    }

    #[test]
    fn our_efficiency_within_2x_of_paper_synthesis_range() {
        // Paper: equivalent 19.1–28.4 TOPS/W at synthesis level. Our model
        // is calibrated to *post-layout* power (time-based, with
        // parasitics), which runs systematically higher than synthesis
        // estimates; we accept a 2× band around the paper range and
        // record the exact gap in EXPERIMENTS.md.
        let rows = table8(&t());
        for r in rows.iter().filter(|r| r.name.starts_with("eRingCNN")) {
            assert!(
                (published::ERINGCNN_SYNTH_RANGE.0 * 0.5..=published::ERINGCNN_SYNTH_RANGE.1 * 1.3)
                    .contains(&r.equivalent_tops_per_watt),
                "{}: {}",
                r.name,
                r.equivalent_tops_per_watt
            );
        }
    }

    #[test]
    fn table7_ratio_between_configs_matches_paper() {
        // The independent reproduction claim: n4/n2 energy-efficiency
        // ratio ≈ 4.59/2.71 = 1.69.
        let rows = table7(&t());
        let n2 = rows.iter().find(|r| r.name.contains("n2")).unwrap();
        let n4 = rows.iter().find(|r| r.name.contains("n4")).unwrap();
        let ratio = n4.efficiency_vs_diffy / n2.efficiency_vs_diffy;
        let want = published::VS_DIFFY.1 / published::VS_DIFFY.0;
        assert!(
            (ratio / want - 1.0).abs() < 0.15,
            "ratio {ratio} vs paper {want}"
        );
        // The n2 row is the anchor by construction.
        assert!((n2.efficiency_vs_diffy - published::VS_DIFFY.0).abs() < 1e-9);
    }

    #[test]
    fn rows_have_provenance() {
        for r in table8(&t()) {
            assert!(!r.provenance.is_empty());
        }
    }
}
