//! Synthesis-level model of a 32-channel 3×3 FRCONV engine for any ring
//! (the Fig. 12 comparison): component-wise multipliers at the widened
//! `wx × wg` operands, transform adders, and — for `(RI, fH)` — the
//! on-the-fly directional-ReLU block.

use crate::params::TechParams;
use ringcnn_algebra::relu::Nonlinearity;
use ringcnn_algebra::ring::{Ring, RingKind};
use serde::{Deserialize, Serialize};

/// Engine geometry shared by all Fig. 12 points: 32 real input and output
/// channels, 3×3 filters, a 4×2-pixel tile per cycle (the eCNN tile).
pub const ENGINE_REAL_CHANNELS: usize = 32;
/// Spatial tile computed per cycle.
pub const ENGINE_TILE_PIXELS: usize = 8;
/// Kernel taps.
pub const ENGINE_TAPS: usize = 9;
/// Accumulator width (8-bit products over 32×9 terms).
pub const ACC_BITS: u32 = 24;

/// Area/power estimate for one engine configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineEstimate {
    /// Ring variant.
    pub ring: RingKind,
    /// Non-linearity built into the engine.
    pub nonlinearity: Nonlinearity,
    /// Real multipliers instantiated.
    pub multipliers: usize,
    /// Engine area, mm².
    pub area_mm2: f64,
    /// Engine power at the reference clock, W.
    pub power_w: f64,
    /// Area efficiency vs the real-valued engine (same throughput).
    pub area_efficiency: f64,
}

/// Models the 3×3 engine for `ring` with `w`-bit features/weights.
pub fn estimate_engine(
    ring: &Ring,
    nonlinearity: Nonlinearity,
    w: u32,
    t: &TechParams,
) -> EngineEstimate {
    let n = ring.n();
    let tuples = ENGINE_REAL_CHANNELS / n;
    let m = ring.fast().m();
    let wx = w + ring.fast().data_bit_growth();
    let wg = w + ring.fast().filter_bit_growth();

    // Component-wise product array: tuples² units × m mults × taps × tile.
    let mults = tuples * tuples * m * ENGINE_TAPS * ENGINE_TILE_PIXELS;
    let mut area = mults as f64 * t.mac_area(wx, wg, ACC_BITS);
    let mut power = mults as f64 * t.mac_power(wx, wg, ACC_BITS);

    // Transform adders, amortized per element (eq. (12)):
    //  - Tx once per input tuple per tile pixel,
    //  - Tz once per output tuple per tile pixel,
    //  - Tg once per weight load (negligible at inference, excluded).
    let tx_adds = adds_of(ring.fast().tx().as_slice(), m, n);
    let tz_adds = adds_of(ring.fast().tz().as_slice(), n, m);
    let transform_adders = (tuples * ENGINE_TILE_PIXELS) as f64 * (tx_adds + tz_adds) as f64;
    area += transform_adders * t.adder_area_per_bit * f64::from(wx.max(ACC_BITS));
    power += transform_adders * t.adder_power_per_bit * f64::from(wx.max(ACC_BITS));

    // Directional-ReLU block (Fig. 8): per output tuple per tile pixel,
    // two FWHT butterflies (2·n·log2 n adders), 2n align/requant
    // shifters, pipeline registers between the three stages, and n
    // saturating rounders — internal width up to 33 bits (ACC + log2 n
    // butterfly growth + 5 bits of Q-format alignment).
    if matches!(
        nonlinearity,
        Nonlinearity::DirectionalH | Nonlinearity::DirectionalO4
    ) && n > 1
    {
        let units = (tuples * ENGINE_TILE_PIXELS) as f64;
        let butterfly_adders = (2 * n) as f64 * (n as f64).log2().ceil();
        let wb = f64::from(ACC_BITS) + (n as f64).log2() + 5.0;
        let adder_bits = butterfly_adders * wb;
        let shifter_bits = 2.0 * n as f64 * wb;
        let reg_bits = 3.0 * n as f64 * wb;
        let sat_bits = n as f64 * wb; // saturation/rounding as adder-class logic
        let unit_area = (adder_bits + sat_bits) * t.adder_area_per_bit
            + shifter_bits * t.shifter_area_per_bit
            + reg_bits * t.reg_area_per_bit;
        let unit_power = (adder_bits + sat_bits) * t.adder_power_per_bit
            + shifter_bits * t.shifter_power_per_bit
            + reg_bits * t.reg_power_per_bit;
        area += units * unit_area * t.drelu_logic_factor;
        power += units * unit_power * t.drelu_logic_factor;
    }

    EngineEstimate {
        ring: ring.kind(),
        nonlinearity,
        multipliers: mults,
        area_mm2: area / 1e6,
        power_w: power / 1e6,
        area_efficiency: 0.0, // filled by the caller relative to real
    }
}

/// Adders implied by a transform matrix: non-zeros minus one per row
/// (an s-term row needs s−1 adders), per application.
fn adds_of(mat: &[f64], rows: usize, cols: usize) -> usize {
    let mut adds = 0usize;
    for r in 0..rows {
        let nnz = (0..cols).filter(|c| mat[r * cols + c] != 0.0).count();
        adds += nnz.saturating_sub(1);
    }
    adds
}

/// The Fig. 12 sweep: every Table-I ring engine plus the real-valued
/// baseline and the proposed `(RI, fH)`, with efficiencies relative to
/// the real engine.
pub fn fig12_engines(w: u32) -> Vec<EngineEstimate> {
    let t = TechParams::tsmc40();
    let real = estimate_engine(
        &Ring::from_kind(RingKind::Ri(1)),
        Nonlinearity::ComponentWise,
        w,
        &t,
    );
    let mut out = Vec::new();
    let mut push = |kind: RingKind, nl: Nonlinearity| {
        let mut e = estimate_engine(&Ring::from_kind(kind), nl, w, &t);
        e.area_efficiency = real.area_mm2 / e.area_mm2;
        out.push(e);
    };
    push(RingKind::Ri(1), Nonlinearity::ComponentWise);
    push(RingKind::Rh(2), Nonlinearity::ComponentWise);
    push(RingKind::Complex, Nonlinearity::ComponentWise);
    push(RingKind::Ri(2), Nonlinearity::DirectionalH);
    push(RingKind::Rh(4), Nonlinearity::ComponentWise);
    push(RingKind::Ro4, Nonlinearity::ComponentWise);
    push(RingKind::Rh4I, Nonlinearity::ComponentWise);
    push(RingKind::Rh4II, Nonlinearity::ComponentWise);
    push(RingKind::Ro4I, Nonlinearity::ComponentWise);
    push(RingKind::Ro4II, Nonlinearity::ComponentWise);
    push(RingKind::Ri(4), Nonlinearity::DirectionalH);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringcnn_algebra::fast::bit_growth;

    fn eff(kind: RingKind, nl: Nonlinearity) -> f64 {
        fig12_engines(8)
            .into_iter()
            .find(|e| e.ring == kind && e.nonlinearity == nl)
            .unwrap()
            .area_efficiency
    }

    #[test]
    fn ri_fh_has_best_area_efficiency_per_n() {
        // §VI-A / Fig. 12: (RI, fH) provides the smallest area among the
        // same-n rings despite the directional-ReLU block.
        let ri4 = eff(RingKind::Ri(4), Nonlinearity::DirectionalH);
        for kind in [
            RingKind::Rh(4),
            RingKind::Ro4,
            RingKind::Rh4I,
            RingKind::Rh4II,
        ] {
            assert!(
                ri4 > eff(kind, Nonlinearity::ComponentWise),
                "(RI4,fH) must beat {kind:?}"
            );
        }
        let ri2 = eff(RingKind::Ri(2), Nonlinearity::DirectionalH);
        for kind in [RingKind::Rh(2), RingKind::Complex] {
            assert!(ri2 > eff(kind, Nonlinearity::ComponentWise));
        }
    }

    #[test]
    fn ri_fh_efficiency_near_n() {
        let ri2 = eff(RingKind::Ri(2), Nonlinearity::DirectionalH);
        let ri4 = eff(RingKind::Ri(4), Nonlinearity::DirectionalH);
        assert!((1.8..=2.1).contains(&ri2), "n=2 engine efficiency {ri2}");
        assert!((3.3..=4.1).contains(&ri4), "n=4 engine efficiency {ri4}");
    }

    #[test]
    fn circulant_and_hadamard_engines_trail_ri4() {
        // Paper: (RI,fH) provides 1.8×/1.5× area efficiency over the
        // CirCNN-alike RH4-I and HadaNet-alike RH4.
        let ri4 = eff(RingKind::Ri(4), Nonlinearity::DirectionalH);
        let rh4i = eff(RingKind::Rh4I, Nonlinearity::ComponentWise);
        let rh4 = eff(RingKind::Rh(4), Nonlinearity::ComponentWise);
        let vs_circnn = ri4 / rh4i;
        let vs_hadanet = ri4 / rh4;
        assert!(
            (1.4..=2.2).contains(&vs_circnn),
            "vs CirCNN-alike {vs_circnn}"
        );
        assert!(
            (1.2..=1.9).contains(&vs_hadanet),
            "vs HadaNet-alike {vs_hadanet}"
        );
    }

    #[test]
    fn multiplier_counts_scale_with_m() {
        let t = TechParams::tsmc40();
        let real = estimate_engine(
            &Ring::from_kind(RingKind::Ri(1)),
            Nonlinearity::ComponentWise,
            8,
            &t,
        );
        assert_eq!(real.multipliers, 32 * 32 * 9 * 8);
        let ri4 = estimate_engine(
            &Ring::from_kind(RingKind::Ri(4)),
            Nonlinearity::DirectionalH,
            8,
            &t,
        );
        assert_eq!(ri4.multipliers, real.multipliers / 4);
        let circ = estimate_engine(
            &Ring::from_kind(RingKind::Rh4I),
            Nonlinearity::ComponentWise,
            8,
            &t,
        );
        assert_eq!(circ.multipliers, 8 * 8 * 5 * 9 * 8);
    }

    #[test]
    fn bit_growth_feeds_the_model() {
        // Sanity: RH4 engines pay for 10-bit operands.
        let ring = Ring::from_kind(RingKind::Rh(4));
        assert_eq!(bit_growth(ring.fast().tx()), 2);
    }
}
