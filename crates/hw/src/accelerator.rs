//! Whole-accelerator model: eCNN (the real-valued backbone) and the two
//! eRingCNN configurations, producing Table V (layout), Table VI
//! (breakdowns) and Fig. 14 (efficiency vs eCNN).

use crate::engine::{estimate_engine, EngineEstimate, ENGINE_REAL_CHANNELS, ENGINE_TILE_PIXELS};
use crate::params::TechParams;
use ringcnn_algebra::relu::Nonlinearity;
use ringcnn_algebra::ring::{Ring, RingKind};
use serde::{Deserialize, Serialize};

/// Configuration of one accelerator instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Display name.
    pub name: String,
    /// Ring dimension (1 = eCNN, the real-valued backbone).
    pub n: usize,
    /// Ring used by the convolution engines.
    pub ring: RingKind,
    /// Non-linearity hardware.
    pub nonlinearity: Nonlinearity,
    /// Weight SRAM capacity, KB.
    pub weight_mem_kb: f64,
    /// Clock, Hz.
    pub clock_hz: f64,
}

impl AcceleratorConfig {
    /// The eCNN backbone (real-valued, MICRO'19 \[21\]).
    pub fn ecnn() -> Self {
        Self {
            name: "eCNN".into(),
            n: 1,
            ring: RingKind::Ri(1),
            nonlinearity: Nonlinearity::ComponentWise,
            weight_mem_kb: 1280.0,
            clock_hz: 250.0e6,
        }
    }

    /// eRingCNN with n = 2 (50% sparsity).
    pub fn eringcnn_n2() -> Self {
        Self {
            name: "eRingCNN-n2".into(),
            n: 2,
            ring: RingKind::Ri(2),
            nonlinearity: Nonlinearity::DirectionalH,
            weight_mem_kb: 960.0,
            clock_hz: 250.0e6,
        }
    }

    /// eRingCNN with n = 4 (75% sparsity).
    pub fn eringcnn_n4() -> Self {
        Self {
            name: "eRingCNN-n4".into(),
            n: 4,
            ring: RingKind::Ri(4),
            nonlinearity: Nonlinearity::DirectionalH,
            weight_mem_kb: 480.0,
            clock_hz: 250.0e6,
        }
    }

    /// Physical real multipliers across both conv engines (3×3 + 1×1).
    pub fn physical_multipliers(&self) -> usize {
        let ring = Ring::from_kind(self.ring);
        let tuples = ENGINE_REAL_CHANNELS / self.n;
        let m = ring.fast().m();
        tuples * tuples * m * ENGINE_TILE_PIXELS * (9 + 1)
    }

    /// Equivalent real-valued MACs per cycle (what the uncompressed model
    /// would need): always the eCNN 81920 regardless of `n`.
    pub fn equivalent_macs_per_cycle(&self) -> usize {
        ENGINE_REAL_CHANNELS * ENGINE_REAL_CHANNELS * ENGINE_TILE_PIXELS * (9 + 1)
    }

    /// Equivalent TOPS (2 ops per MAC) at the configured clock.
    pub fn equivalent_tops(&self) -> f64 {
        self.equivalent_macs_per_cycle() as f64 * self.clock_hz * 2.0 / 1e12
    }
}

/// One component row of the breakdown (Table VI).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Component name.
    pub component: String,
    /// Area, mm².
    pub area_mm2: f64,
    /// Power, W.
    pub power_w: f64,
}

/// Full layout-level report (Table V + Table VI).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayoutReport {
    /// Configuration name.
    pub name: String,
    /// Total area, mm².
    pub area_mm2: f64,
    /// Total power, W.
    pub power_w: f64,
    /// Equivalent TOPS.
    pub tops_equivalent: f64,
    /// Equivalent energy efficiency, TOPS/W.
    pub tops_per_watt: f64,
    /// Component breakdown.
    pub breakdown: Vec<BreakdownRow>,
}

/// Models one accelerator configuration.
pub fn layout_report(cfg: &AcceleratorConfig, t: &TechParams) -> LayoutReport {
    let ring = Ring::from_kind(cfg.ring);
    let clock_ratio = cfg.clock_hz / t.clock_hz;
    // 3×3 engine modeled in detail; the 1×1 engine is the same structure
    // with one tap.
    let e3: EngineEstimate = estimate_engine(&ring, cfg.nonlinearity, 8, t);
    let e1_area = e3.area_mm2 / 9.0;
    let e1_power = e3.power_w / 9.0;
    let conv_area = e3.area_mm2 + e1_area;
    let conv_power = (e3.power_w + e1_power) * clock_ratio;

    let wmem_area = cfg.weight_mem_kb * t.sram_area_per_kb;
    let fixed_area = t.fixed_area_mm2;
    let fixed_power = t.fixed_power_w * clock_ratio;

    let area = conv_area + wmem_area + fixed_area;
    let power = conv_power + fixed_power;
    let tops = cfg.equivalent_tops();
    LayoutReport {
        name: cfg.name.clone(),
        area_mm2: area,
        power_w: power,
        tops_equivalent: tops,
        tops_per_watt: tops / power,
        breakdown: vec![
            BreakdownRow {
                component: "convolution engines".into(),
                area_mm2: conv_area,
                power_w: conv_power,
            },
            BreakdownRow {
                component: "weight memory".into(),
                area_mm2: wmem_area,
                power_w: 0.12 * clock_ratio,
            },
            BreakdownRow {
                component: "block buffer + datapath + control".into(),
                area_mm2: fixed_area,
                power_w: (fixed_power - 0.12 * clock_ratio).max(0.0),
            },
        ],
    }
}

/// Fig. 14: engine-level and whole-chip area/energy efficiencies of a
/// configuration relative to eCNN at equal equivalent throughput.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EfficiencyVsEcnn {
    /// Configuration name.
    pub name: String,
    /// Conv-engine area efficiency.
    pub engine_area: f64,
    /// Conv-engine energy efficiency.
    pub engine_energy: f64,
    /// Whole-accelerator area efficiency.
    pub chip_area: f64,
    /// Whole-accelerator energy efficiency.
    pub chip_energy: f64,
}

/// Computes Fig. 14 for one configuration.
pub fn efficiency_vs_ecnn(cfg: &AcceleratorConfig, t: &TechParams) -> EfficiencyVsEcnn {
    let base = layout_report(&AcceleratorConfig::ecnn(), t);
    let ours = layout_report(cfg, t);
    let conv = |r: &LayoutReport| (r.breakdown[0].area_mm2, r.breakdown[0].power_w);
    let (ba, bp) = conv(&base);
    let (oa, op) = conv(&ours);
    EfficiencyVsEcnn {
        name: cfg.name.clone(),
        engine_area: ba / oa,
        engine_energy: bp / op,
        chip_area: base.area_mm2 / ours.area_mm2,
        chip_energy: base.power_w / ours.power_w,
    }
}

/// DRAM bandwidth demand of the block-based inference flow for 4K UHD
/// 30 fps: input + output images at 8 bits per pixel per channel, with
/// the block-recompute overhead factor of eCNN's flow (features never
/// leave the chip).
pub fn dram_bandwidth_gbs(overlap_overhead: f64) -> f64 {
    let pixels = 3840.0 * 2160.0 * 30.0;
    // 3-channel input + 3-channel output + ~1.7× block-halo recompute
    // reads on the input side.
    (pixels * 3.0 * (1.0 + overlap_overhead) + pixels * 3.0) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ACC_BITS;

    fn t() -> TechParams {
        TechParams::tsmc40()
    }

    #[test]
    fn table5_matches_paper_within_tolerance() {
        // Paper Table V: n2 = 33.73 mm² / 3.76 W; n4 = 23.36 mm² / 2.22 W.
        let n2 = layout_report(&AcceleratorConfig::eringcnn_n2(), &t());
        let n4 = layout_report(&AcceleratorConfig::eringcnn_n4(), &t());
        assert!(
            (n2.area_mm2 - 33.73).abs() / 33.73 < 0.10,
            "n2 area {}",
            n2.area_mm2
        );
        assert!(
            (n2.power_w - 3.76).abs() / 3.76 < 0.10,
            "n2 power {}",
            n2.power_w
        );
        assert!(
            (n4.area_mm2 - 23.36).abs() / 23.36 < 0.10,
            "n4 area {}",
            n4.area_mm2
        );
        assert!(
            (n4.power_w - 2.22).abs() / 2.22 < 0.12,
            "n4 power {}",
            n4.power_w
        );
    }

    #[test]
    fn ecnn_matches_published_numbers() {
        let e = layout_report(&AcceleratorConfig::ecnn(), &t());
        assert!(
            (e.area_mm2 - 55.23).abs() / 55.23 < 0.10,
            "area {}",
            e.area_mm2
        );
        assert!(
            (e.power_w - 6.94).abs() / 6.94 < 0.10,
            "power {}",
            e.power_w
        );
        assert!((e.tops_equivalent - 40.96).abs() < 0.1);
    }

    #[test]
    fn fig14_efficiencies_match_paper_shape() {
        // Paper: n2 engines 2.08×/2.00×, chip 1.64×/1.85×;
        //        n4 engines 3.77×/3.84×, chip 2.36×/3.12×.
        let n2 = efficiency_vs_ecnn(&AcceleratorConfig::eringcnn_n2(), &t());
        let n4 = efficiency_vs_ecnn(&AcceleratorConfig::eringcnn_n4(), &t());
        assert!(
            (1.85..=2.25).contains(&n2.engine_area),
            "n2 engine area {}",
            n2.engine_area
        );
        assert!(
            (1.8..=2.2).contains(&n2.engine_energy),
            "n2 engine energy {}",
            n2.engine_energy
        );
        assert!(
            (3.4..=4.1).contains(&n4.engine_area),
            "n4 engine area {}",
            n4.engine_area
        );
        assert!(
            (3.4..=4.2).contains(&n4.engine_energy),
            "n4 engine energy {}",
            n4.engine_energy
        );
        // Whole-chip gains are smaller than engine gains (fixed overheads).
        assert!(n2.chip_area < n2.engine_area);
        assert!(n2.chip_energy < n2.engine_energy);
        assert!(n4.chip_area < n4.engine_area);
        assert!(n4.chip_energy < n4.engine_energy);
        // And n4 beats n2 everywhere.
        assert!(n4.chip_energy > n2.chip_energy);
    }

    #[test]
    fn physical_multiplier_counts() {
        assert_eq!(AcceleratorConfig::ecnn().physical_multipliers(), 81920);
        assert_eq!(
            AcceleratorConfig::eringcnn_n2().physical_multipliers(),
            40960
        );
        assert_eq!(
            AcceleratorConfig::eringcnn_n4().physical_multipliers(),
            20480
        );
    }

    #[test]
    fn equivalent_tops_is_41_for_all() {
        for cfg in [
            AcceleratorConfig::ecnn(),
            AcceleratorConfig::eringcnn_n2(),
            AcceleratorConfig::eringcnn_n4(),
        ] {
            assert!((cfg.equivalent_tops() - 40.96).abs() < 0.01, "{}", cfg.name);
        }
    }

    #[test]
    fn dram_bandwidth_near_paper_value() {
        // Paper: 1.93 GB/s for 4K UHD applications.
        let bw = dram_bandwidth_gbs(0.7);
        assert!((bw - 1.93).abs() < 0.4, "bandwidth {bw}");
    }

    #[test]
    fn drelu_overhead_grows_with_n() {
        // Table VI: the directional ReLU is 3.4% of the 3×3 engine for
        // n=2 and 8.9% for n=4.
        let tech = t();
        let with = |kind: RingKind, nl: Nonlinearity| {
            estimate_engine(&Ring::from_kind(kind), nl, 8, &tech).area_mm2
        };
        let n2_frac = 1.0
            - with(RingKind::Ri(2), Nonlinearity::None)
                / with(RingKind::Ri(2), Nonlinearity::DirectionalH);
        let n4_frac = 1.0
            - with(RingKind::Ri(4), Nonlinearity::None)
                / with(RingKind::Ri(4), Nonlinearity::DirectionalH);
        assert!(n4_frac > n2_frac, "n4 {n4_frac} vs n2 {n2_frac}");
        assert!(
            (0.01..=0.07).contains(&n2_frac),
            "n2 drelu fraction {n2_frac}"
        );
        assert!(
            (0.04..=0.14).contains(&n4_frac),
            "n4 drelu fraction {n4_frac}"
        );
    }

    #[test]
    fn acc_bits_constant_is_sane() {
        assert_eq!(ACC_BITS, 24);
    }
}
