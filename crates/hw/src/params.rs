//! Technology parameters of the analytical 40 nm cost model.
//!
//! The paper evaluates eRingCNN with a TSMC 40 nm Synopsys flow; we model
//! area/power bottom-up from gate counts (the paper's own Table-I
//! methodology: multiplier circuit complexity ∝ `wx·wg`) with per-unit
//! constants calibrated once against the *published eCNN backbone
//! numbers* (MICRO'19 \[21\]: 55.23 mm², 6.94 W, 72.8%/94.0% of area/power
//! in convolutions, 81920 8-bit MACs at 250 MHz). Everything reported for
//! eRingCNN is then a model *prediction*, compared against the paper in
//! EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// Per-unit cost constants for a process node.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TechParams {
    /// Multiplier area per bit-product, µm² per (bit × bit).
    pub mult_area_per_bit2: f64,
    /// Multiplier power per bit-product at the reference clock, µW.
    pub mult_power_per_bit2: f64,
    /// Adder area per bit, µm².
    pub adder_area_per_bit: f64,
    /// Adder power per bit, µW.
    pub adder_power_per_bit: f64,
    /// Pipeline register area per bit, µm².
    pub reg_area_per_bit: f64,
    /// Pipeline register power per bit, µW.
    pub reg_power_per_bit: f64,
    /// Barrel-shifter area per bit (≈ a few muxes), µm².
    pub shifter_area_per_bit: f64,
    /// Barrel-shifter power per bit, µW.
    pub shifter_power_per_bit: f64,
    /// SRAM macro area per KB, mm².
    pub sram_area_per_kb: f64,
    /// Fixed area of the non-conv subsystem (block buffers, inference
    /// datapath, I/O, control), mm².
    pub fixed_area_mm2: f64,
    /// Fixed power of the non-conv subsystem, W.
    pub fixed_power_w: f64,
    /// Reference clock, Hz.
    pub clock_hz: f64,
    /// Multiplier on the raw adder/shifter/register cost of the
    /// directional-ReLU unit covering its rounding, saturation and
    /// control logic (calibrated to the Table VI breakdown).
    pub drelu_logic_factor: f64,
}

impl TechParams {
    /// The calibrated 40 nm parameters (see module docs).
    pub fn tsmc40() -> Self {
        Self {
            mult_area_per_bit2: 4.6,
            mult_power_per_bit2: 0.75,
            adder_area_per_bit: 4.0,
            adder_power_per_bit: 0.66,
            reg_area_per_bit: 4.2,
            reg_power_per_bit: 0.65,
            shifter_area_per_bit: 3.0,
            shifter_power_per_bit: 0.30,
            sram_area_per_kb: 3.46e-3,
            fixed_area_mm2: 11.0,
            fixed_power_w: 0.51,
            clock_hz: 250.0e6,
            drelu_logic_factor: 2.5,
        }
    }

    /// Area of one pipelined 8-bit-class MAC: multiplier (`wx × wg`),
    /// accumulator adder and pipeline register of `acc_bits`, in µm².
    pub fn mac_area(&self, wx: u32, wg: u32, acc_bits: u32) -> f64 {
        self.mult_area_per_bit2 * f64::from(wx) * f64::from(wg)
            + self.adder_area_per_bit * f64::from(acc_bits)
            + self.reg_area_per_bit * f64::from(acc_bits)
    }

    /// Power of one MAC at the reference clock, µW.
    pub fn mac_power(&self, wx: u32, wg: u32, acc_bits: u32) -> f64 {
        self.mult_power_per_bit2 * f64::from(wx) * f64::from(wg)
            + self.adder_power_per_bit * f64::from(acc_bits)
            + self.reg_power_per_bit * f64::from(acc_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_ecnn_mac_cost() {
        // eCNN: 40.2 mm² of convolution for 81920 MACs → ~490 µm²/MAC,
        // 6.52 W → ~80 µW/MAC.
        let t = TechParams::tsmc40();
        let area = t.mac_area(8, 8, 24);
        let power = t.mac_power(8, 8, 24);
        assert!((area - 490.0).abs() < 25.0, "area/MAC {area}");
        assert!((power - 79.6).abs() < 5.0, "power/MAC {power}");
    }

    #[test]
    fn wider_operands_cost_more() {
        let t = TechParams::tsmc40();
        assert!(t.mac_area(10, 10, 24) > t.mac_area(8, 8, 24));
        assert!(t.mac_power(10, 8, 24) > t.mac_power(8, 8, 24));
    }
}
