//! Energy-per-pixel modeling: the quality-energy tradeoff curves of
//! Fig. 15 and the throughput-scaled operating points of Table VII.

use crate::accelerator::{layout_report, AcceleratorConfig};
use crate::params::TechParams;
use serde::{Deserialize, Serialize};

/// One operating point on a quality-energy curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EnergyPoint {
    /// Accelerator name.
    pub accelerator: String,
    /// Model compute demand, equivalent real multiplications per pixel
    /// (the *uncompressed* model's count — the accelerator's sparsity
    /// serves it with n× fewer physical operations).
    pub equivalent_mults_per_pixel: f64,
    /// Pixels per second the accelerator sustains for this model.
    pub pixels_per_second: f64,
    /// Energy per output pixel, nJ.
    pub nj_per_pixel: f64,
}

/// Computes the operating point of `cfg` running a model of the given
/// equivalent complexity.
///
/// The engines retire `equivalent_macs_per_cycle` equivalent MACs per
/// cycle at full utilization, so a model needing `M` equivalent mults per
/// pixel sustains `clock · macs / M` pixels/s; energy per pixel is
/// `power / rate`.
pub fn operating_point(
    cfg: &AcceleratorConfig,
    equivalent_mults_per_pixel: f64,
    t: &TechParams,
) -> EnergyPoint {
    let report = layout_report(cfg, t);
    let macs_per_sec = cfg.equivalent_macs_per_cycle() as f64 * cfg.clock_hz;
    let pixels_per_second = macs_per_sec / equivalent_mults_per_pixel.max(1.0);
    EnergyPoint {
        accelerator: cfg.name.clone(),
        equivalent_mults_per_pixel,
        pixels_per_second,
        nj_per_pixel: report.power_w / pixels_per_second * 1e9,
    }
}

/// A quality-energy curve: for each compact model configuration (given as
/// `(label, equivalent mults/pixel, psnr)`), the energy point on `cfg`.
pub fn quality_energy_curve(
    cfg: &AcceleratorConfig,
    models: &[(String, f64, f64)],
    t: &TechParams,
) -> Vec<(EnergyPoint, f64)> {
    models
        .iter()
        .map(|(label, mults, psnr)| {
            let mut p = operating_point(cfg, *mults, t);
            p.accelerator = format!("{} [{}]", cfg.name, label);
            (p, *psnr)
        })
        .collect()
}

/// Scales a configuration's clock (Table VII runs at 167 MHz); power in
/// this model scales linearly with frequency.
pub fn at_clock(cfg: &AcceleratorConfig, clock_hz: f64) -> AcceleratorConfig {
    AcceleratorConfig {
        clock_hz,
        ..cfg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TechParams {
        TechParams::tsmc40()
    }

    #[test]
    fn n4_uses_less_energy_per_pixel_than_n2() {
        // Fig. 15: at the same model complexity the lower-power n4 design
        // wins on energy per pixel.
        let m = 500_000.0;
        let e2 = operating_point(&AcceleratorConfig::eringcnn_n2(), m, &t());
        let e4 = operating_point(&AcceleratorConfig::eringcnn_n4(), m, &t());
        assert!(e4.nj_per_pixel < e2.nj_per_pixel);
        // Equal equivalent throughput ⇒ equal pixel rate.
        assert!((e2.pixels_per_second - e4.pixels_per_second).abs() < 1.0);
    }

    #[test]
    fn both_beat_ecnn_on_energy() {
        let m = 500_000.0;
        let ecnn = operating_point(&AcceleratorConfig::ecnn(), m, &t());
        let e2 = operating_point(&AcceleratorConfig::eringcnn_n2(), m, &t());
        assert!(e2.nj_per_pixel < ecnn.nj_per_pixel);
    }

    #[test]
    fn energy_ratio_n2_to_n4_matches_table7_shape() {
        // Table VII implies an n2:n4 energy ratio of 4.59/2.71 ≈ 1.69 at
        // the FFDNet-level Full-HD 20 fps operating point (167 MHz).
        let clock = 167.0e6;
        let m = 850_000.0; // FFDNet-level equivalent mults/pixel (arbitrary common value)
        let e2 = operating_point(&at_clock(&AcceleratorConfig::eringcnn_n2(), clock), m, &t());
        let e4 = operating_point(&at_clock(&AcceleratorConfig::eringcnn_n4(), clock), m, &t());
        let ratio = e2.nj_per_pixel / e4.nj_per_pixel;
        assert!((1.45..=1.95).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn throughput_scales_inversely_with_model_size() {
        let cfg = AcceleratorConfig::eringcnn_n2();
        let small = operating_point(&cfg, 100_000.0, &t());
        let large = operating_point(&cfg, 400_000.0, &t());
        assert!((small.pixels_per_second / large.pixels_per_second - 4.0).abs() < 1e-6);
    }

    #[test]
    fn uhd30_supported_at_moderate_model_size() {
        // 4K UHD 30 fps needs 248.8 Mpixel/s; with 41 TOPS equivalent the
        // affordable model is ~82k equivalent mults/pixel.
        let cfg = AcceleratorConfig::eringcnn_n4();
        let p = operating_point(&cfg, 82_000.0, &t());
        assert!(
            p.pixels_per_second > 3840.0 * 2160.0 * 30.0,
            "{}",
            p.pixels_per_second
        );
    }
}
