//! Design-space exploration beyond the paper's two build points: sweeps
//! eRingCNN-style configurations over ring dimension and clock, projecting
//! where the returns of algebraic sparsity saturate (the paper's
//! conclusion hints at n = 8 via Fig. 11's 8× compression point).

use crate::accelerator::{layout_report, AcceleratorConfig};
use crate::params::TechParams;
use ringcnn_algebra::relu::Nonlinearity;
use ringcnn_algebra::ring::RingKind;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Ring dimension.
    pub n: usize,
    /// Clock, MHz.
    pub clock_mhz: f64,
    /// Total area, mm².
    pub area_mm2: f64,
    /// Total power, W.
    pub power_w: f64,
    /// Equivalent TOPS.
    pub tops: f64,
    /// Equivalent TOPS per watt.
    pub tops_per_watt: f64,
    /// Share of the chip that is *not* convolution engines (the fixed
    /// overhead that eventually dominates as n grows).
    pub overhead_fraction: f64,
}

/// An eRingCNN-style configuration for arbitrary power-of-two `n`
/// (weight memory scales as `1/n` from the eCNN 1280 KB with the paper's
/// 1.5× no-compression margin).
pub fn config_for(n: usize, clock_hz: f64) -> AcceleratorConfig {
    assert!(
        n.is_power_of_two() && n <= 32,
        "n must be a power of two ≤ 32"
    );
    if n == 1 {
        return AcceleratorConfig {
            clock_hz,
            ..AcceleratorConfig::ecnn()
        };
    }
    AcceleratorConfig {
        name: format!("eRingCNN-n{n}"),
        n,
        ring: RingKind::Ri(n),
        nonlinearity: Nonlinearity::DirectionalH,
        weight_mem_kb: 1280.0 * 1.5 / n as f64,
        clock_hz,
    }
}

/// Sweeps ring dimensions at the reference clock.
pub fn sweep_n(ns: &[usize], t: &TechParams) -> Vec<SweepPoint> {
    ns.iter()
        .map(|&n| {
            let cfg = config_for(n, t.clock_hz);
            let r = layout_report(&cfg, t);
            let conv_area = r.breakdown[0].area_mm2;
            SweepPoint {
                n,
                clock_mhz: cfg.clock_hz / 1e6,
                area_mm2: r.area_mm2,
                power_w: r.power_w,
                tops: r.tops_equivalent,
                tops_per_watt: r.tops_per_watt,
                overhead_fraction: 1.0 - conv_area / r.area_mm2,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_named_configs() {
        let t = TechParams::tsmc40();
        let pts = sweep_n(&[1, 2, 4], &t);
        let named2 = layout_report(&AcceleratorConfig::eringcnn_n2(), &t);
        assert!((pts[1].area_mm2 - named2.area_mm2).abs() < 1e-9);
        let named4 = layout_report(&AcceleratorConfig::eringcnn_n4(), &t);
        assert!((pts[2].power_w - named4.power_w).abs() < 1e-9);
    }

    #[test]
    fn returns_diminish_with_n() {
        // Power keeps dropping with n, but the non-conv overhead fraction
        // grows — the architectural message of Fig. 14 extrapolated.
        let t = TechParams::tsmc40();
        let pts = sweep_n(&[1, 2, 4, 8, 16], &t);
        for w in pts.windows(2) {
            assert!(w[1].power_w < w[0].power_w, "power must fall with n");
            assert!(
                w[1].overhead_fraction > w[0].overhead_fraction,
                "fixed overheads must dominate as n grows"
            );
        }
        // Efficiency gains shrink: the TOPS/W step from n=8 to n=16 is
        // smaller than from n=1 to n=2 in absolute terms of power saved.
        let save_12 = pts[0].power_w - pts[1].power_w;
        let save_816 = pts[3].power_w - pts[4].power_w;
        assert!(save_12 > 4.0 * save_816);
    }

    #[test]
    fn config_for_rejects_bad_n() {
        let r = std::panic::catch_unwind(|| config_for(3, 250e6));
        assert!(r.is_err());
    }
}
