//! # ringcnn-hw
//!
//! Analytical hardware cost models for the RingCNN reproduction: a gate-
//! level 40 nm area/power model ([`params`]) calibrated against the
//! published eCNN backbone, per-ring FRCONV engine estimates — Fig. 12 —
//! ([`engine`]), whole-accelerator layout reports and efficiency
//! comparisons — Tables V/VI, Fig. 14 — ([`accelerator`]), quality-energy
//! curves — Fig. 15, Table VII — ([`energy`]), and cited competitor
//! comparisons — Table VIII — ([`competitors`]).
//!
//! ```
//! use ringcnn_hw::prelude::*;
//! let t = TechParams::tsmc40();
//! let n4 = layout_report(&AcceleratorConfig::eringcnn_n4(), &t);
//! assert!(n4.area_mm2 < 30.0 && n4.power_w < 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod competitors;
pub mod energy;
pub mod engine;
pub mod params;
pub mod sweep;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::accelerator::{
        dram_bandwidth_gbs, efficiency_vs_ecnn, layout_report, AcceleratorConfig, EfficiencyVsEcnn,
        LayoutReport,
    };
    pub use crate::competitors::{table7, table8, DiffyComparisonRow, SparsityAcceleratorRow};
    pub use crate::energy::{at_clock, operating_point, quality_energy_curve, EnergyPoint};
    pub use crate::engine::{estimate_engine, fig12_engines, EngineEstimate};
    pub use crate::params::TechParams;
    pub use crate::sweep::{config_for, sweep_n, SweepPoint};
}
