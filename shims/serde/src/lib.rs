//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on non-generic
//! structs/enums without `#[serde(...)]` attributes, consumed by the
//! sibling `serde_json` shim.
//!
//! Instead of serde's visitor architecture, both traits go through one
//! JSON-shaped [`Value`] tree: `Serialize` renders into it and
//! `Deserialize` reads back out of it. This is dramatically simpler and
//! entirely sufficient for JSON round-trips, which is the only data
//! format the workspace touches. Swap in the real crates by deleting the
//! `shims/` path entries from the workspace manifest once a registry is
//! reachable.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree — the interchange format between the derive
/// macros and `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside `i64` range.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Creates an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Looks up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            _ => Err(Error::custom(format!(
                "expected object with field `{name}`"
            ))),
        }
    }

    /// Looks up an element of an array.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| Error::custom(format!("missing array element {i}"))),
            _ => Err(Error::custom(format!("expected array with element {i}"))),
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::I64(v) => Ok(*v as f64),
            Value::U64(v) => Ok(*v as f64),
            Value::F64(v) => Ok(*v),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected number")),
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::I64(v) => Ok(*v),
            Value::U64(v) => i64::try_from(*v).map_err(|_| Error::custom("u64 out of i64 range")),
            Value::F64(v) if v.fract() == 0.0 => Ok(*v as i64),
            _ => Err(Error::custom("expected integer")),
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::U64(v) => Ok(*v),
            Value::I64(v) => u64::try_from(*v).map_err(|_| Error::custom("negative integer")),
            Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as u64),
            _ => Err(Error::custom("expected unsigned integer")),
        }
    }
}

/// Renders `self` into the shim [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a JSON-shaped value tree.
    fn to_json_value(&self) -> Value;
}

/// Reconstructs `Self` from the shim [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a JSON-shaped value tree.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

// --- Serialize impls -------------------------------------------------------

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::F64(*self as f64) }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

// --- Deserialize impls -----------------------------------------------------

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let items = <Vec<T>>::from_json_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok((
            A::from_json_value(v.index(0)?)?,
            B::from_json_value(v.index(1)?)?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok((
            A::from_json_value(v.index(0)?)?,
            B::from_json_value(v.index(1)?)?,
            C::from_json_value(v.index(2)?)?,
        ))
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, pv)| Ok((k.clone(), V::from_json_value(pv)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, pv)| Ok((k.clone(), V::from_json_value(pv)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
