//! Offline stand-in for `serde_json`: renders the `serde` shim's
//! [`Value`] tree to JSON text and parses it back. Supports the calls
//! this workspace makes — `to_string`, `to_string_pretty`, `from_str` —
//! with standard JSON escapes and number handling (non-finite floats
//! serialize as `null`, matching real `serde_json`).

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes any `Serialize` type to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes any `Serialize` type to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_json_value(&v)
}

// --- Writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Keep floats round-trippable and visibly floating-point.
                let s = format!("{n:?}");
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, pv)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(pv, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::I64(-3)),
            ("b".into(), Value::F64(1.5)),
            (
                "c".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("d".into(), Value::Str("hi \"there\"\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn parses_nested_json() {
        let v: Value = from_str(r#"{"x": [1, 2.5, "s"], "y": {"z": null}}"#).unwrap();
        assert_eq!(
            v.field("x").unwrap().index(1).unwrap().as_f64().unwrap(),
            2.5
        );
    }
}
