//! Offline stand-in for `proptest`: the `proptest!` macro runs each
//! property for `ProptestConfig::cases` random cases drawn from simple
//! range/collection strategies. Failing inputs are reported via panic
//! message (the drawn values are `Debug`-printed); there is no shrinking.
//! The RNG is seeded deterministically from the property's name, so runs
//! are reproducible.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-property configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic test RNG (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG from a property name, so each property draws a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                *self.start() + (*self.end() - *self.start()) * rng.unit_f64() as $t
            }
        }
    )*};
}
strategy_float!(f32, f64);

macro_rules! strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `Just`-style constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy producing `Vec`s of fixed length drawn element-wise.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `proptest::collection::vec(strategy, len)`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one property for `cases` random draws. Used by `proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// Property assertion; panics (no shrinking) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Early-exit assumption; in this shim it just skips the case by
/// `continue`-ing would be unsound inside nested code, so it panics if
/// the assumption is violated frequently — kept trivially permissive.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Range strategies stay within their bounds.
        #[test]
        fn in_bounds(x in -3.0f64..3.0, n in 1u32..8, v in collection::vec(0i64..10, 4)) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..8).contains(&n));
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|e| (0..10).contains(e)));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("p");
        let mut b = TestRng::deterministic("p");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
