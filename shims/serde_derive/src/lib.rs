//! Offline stand-in for `serde_derive`, written against the in-repo
//! `serde` shim (see `shims/serde`). The container image has no crates.io
//! access, so this derive is hand-rolled on `proc_macro` alone — no
//! `syn`/`quote`. It supports exactly the shapes this workspace uses:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple, or struct-like, with no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum TypeDef {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<(String, VariantShape)>,
    },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` (shim data model: `to_json_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    gen_serialize(&def)
        .parse()
        .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (shim data model: `from_json_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    gen_deserialize(&def)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_type_def(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                TypeDef::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream()),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                TypeDef::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => TypeDef::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => TypeDef::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("serde shim derive: malformed enum {name}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // [...]
        }
    }
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1; // pub(crate) / pub(super)
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket aware:
/// commas inside `Foo<A, B>` are plain puncts and must not split fields).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        arity += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, shape));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(def: &TypeDef) -> String {
    let (name, body) = match def {
        TypeDef::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f}))")
                })
                .collect();
            (
                name,
                format!("::serde::Value::Object(vec![{}])", pairs.join(", ")),
            )
        }
        TypeDef::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_json_value(&self.{k})"))
                .collect();
            if *arity == 1 {
                (name, items.into_iter().next().unwrap())
            } else {
                (
                    name,
                    format!("::serde::Value::Array(vec![{}])", items.join(", ")),
                )
            }
        }
        TypeDef::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        TypeDef::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        let payload = if *arity == 1 {
                            items[0].clone()
                        } else {
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), {payload})]),",
                            binds.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_json_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let (name, body) = match def {
        TypeDef::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_json_value(__v.field(\"{f}\")?)?")
                })
                .collect();
            (name, format!("Ok({name} {{ {} }})", inits.join(", ")))
        }
        TypeDef::TupleStruct { name, arity } => {
            let inits: Vec<String> = if *arity == 1 {
                vec!["::serde::Deserialize::from_json_value(__v)?".to_string()]
            } else {
                (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_json_value(__v.index({k})?)?"))
                    .collect()
            };
            (name, format!("Ok({name}({}))", inits.join(", ")))
        }
        TypeDef::UnitStruct { name } => (name, format!("Ok({name})")),
        TypeDef::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(arity) => {
                        let inits: Vec<String> = if *arity == 1 {
                            vec!["::serde::Deserialize::from_json_value(__pv)?".to_string()]
                        } else {
                            (0..*arity)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_json_value(__pv.index({k})?)?"
                                    )
                                })
                                .collect()
                        };
                        Some(format!("\"{v}\" => Ok({name}::{v}({})),", inits.join(", ")))
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_json_value(__pv.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            let body = format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => Err(::serde::Error::custom(format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__k, __pv) = &__pairs[0];\n\
                         match __k.as_str() {{\n\
                             {payload}\n\
                             __other => Err(::serde::Error::custom(format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::custom(\"expected string or single-key object for enum {name}\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                payload = payload_arms.join("\n"),
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             #[allow(unused_variables)]\n\
             fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
