//! Offline stand-in for `rayon`, now with real parallelism: a persistent
//! pool of `std::thread` workers behind the same `par_iter` /
//! `into_par_iter` / `join` / `scope` entry points, so the workspace's
//! call sites compile unchanged against either this shim or the real
//! crate.
//!
//! Guarantees the workspace relies on:
//!
//! - **Ordered results.** `map(...).collect()` returns items in input
//!   order regardless of which worker computed them, exactly like rayon.
//! - **Bit-determinism.** Each index is computed independently and
//!   written to its own slot; no floating-point reduction order changes
//!   with the thread count, so parallel output is bit-identical to the
//!   sequential path.
//! - **Thread-count control.** The pool is sized once per process from
//!   `RINGCNN_THREADS` (then `RAYON_NUM_THREADS`, then the machine's
//!   available parallelism). Size 1 runs every entry point inline.
//! - **Nesting.** Submitting threads participate in draining their own
//!   jobs, so parallel sections nest without deadlock (the pool is
//!   shared, not per-call).
//!
//! Differences from real rayon, by design of the offline shim: no
//! work-stealing deques (a shared chunked cursor balances load instead),
//! no split/fold adapter zoo — only the adapters the workspace uses
//! (`map`, `for_each`, `collect`, `sum`), and `scope` drains spawned
//! tasks in waves rather than interleaving them with the spawning
//! closure.

pub mod pool;

/// Runs two closures, potentially in parallel, and returns both results.
///
/// Panics from either closure propagate after both slots have settled.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra = None;
    let mut rb = None;
    {
        let ta: Box<dyn FnOnce() + Send + '_> = Box::new(|| ra = Some(a()));
        let tb: Box<dyn FnOnce() + Send + '_> = Box::new(|| rb = Some(b()));
        pool::run_tasks(vec![ta, tb]);
    }
    (
        ra.expect("join arm executed"),
        rb.expect("join arm executed"),
    )
}

/// The number of threads the global pool runs (1 means sequential).
pub fn current_num_threads() -> usize {
    pool::current_num_threads()
}

type ScopedTask<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A scope for spawning borrowed tasks (`rayon::scope` lookalike).
///
/// Tasks spawned with [`Scope::spawn`] run after the scope closure
/// returns, in parallel waves, and are all complete before [`scope`]
/// returns — which is what lets them borrow from the caller's stack.
pub struct Scope<'scope> {
    tasks: std::sync::Mutex<Vec<ScopedTask<'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Queues a task; it may spawn further tasks through the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.tasks
            .lock()
            .expect("scope task list poisoned")
            .push(Box::new(f));
    }
}

/// Runs `op`, then drains every task it spawned (and any tasks those
/// spawn) across the pool; returns `op`'s result once all are done.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        tasks: std::sync::Mutex::new(Vec::new()),
    };
    let result = op(&s);
    loop {
        let batch = std::mem::take(&mut *s.tasks.lock().expect("scope task list poisoned"));
        if batch.is_empty() {
            break;
        }
        let scope_ref = &s;
        pool::run_tasks(
            batch
                .into_iter()
                .map(|t| Box::new(move || t(scope_ref)) as Box<dyn FnOnce() + Send + '_>)
                .collect(),
        );
    }
    result
}

/// Parallel re-interpretation of `rayon::prelude`.
pub mod prelude {
    use crate::pool;
    use std::sync::Mutex;

    pub use crate::{current_num_threads, join, scope};

    /// `into_par_iter()` for any owned iterable (ranges, `Vec`, …).
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Send,
    {
        /// Buffers the items and hands back a parallel adapter.
        fn into_par_iter(self) -> IntoParIter<Self::Item> {
            IntoParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T where T::Item: Send {}

    /// Owned-item parallel iterator.
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> IntoParIter<T> {
        /// Parallel map over owned items.
        pub fn map<R, F>(self, f: F) -> ParMapOwned<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMapOwned {
                items: self.items,
                f,
            }
        }

        /// Runs `f` on every item across the pool.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Sync,
        {
            let _: Vec<()> = self.map(f).collect();
        }
    }

    /// Pending owned-item parallel map.
    pub struct ParMapOwned<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> ParMapOwned<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Executes the map across the pool and collects results in
        /// input order.
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<R>,
        {
            let slots: Vec<Mutex<Option<T>>> = self
                .items
                .into_iter()
                .map(|t| Mutex::new(Some(t)))
                .collect();
            let f = &self.f;
            pool::map_indexed(slots.len(), |i| {
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item taken once");
                f(item)
            })
            .into_iter()
            .collect()
        }

        /// Parallel sum of the mapped values.
        pub fn sum(self) -> R
        where
            R: std::iter::Sum<R>,
        {
            self.collect::<Vec<R>>().into_iter().sum()
        }
    }

    /// `par_iter()` / `par_iter_mut()` on slices (and `Vec` via deref).
    pub trait ParallelSlice<T> {
        /// Shared-reference parallel iterator.
        fn par_iter(&self) -> ParSliceIter<'_, T>;
        /// Mutable parallel iterator.
        fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T>;
        /// Mutable parallel chunk iterator.
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParSliceIter<'_, T> {
            ParSliceIter { slice: self }
        }

        fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T> {
            ParSliceIterMut { slice: self }
        }

        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            assert!(size > 0, "chunk size must be positive");
            ParChunksMut { slice: self, size }
        }
    }

    /// Borrowed-item parallel iterator over a slice.
    pub struct ParSliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParSliceIter<'a, T> {
        /// Parallel map over `&T`.
        pub fn map<R, F>(self, f: F) -> ParMapSlice<'a, T, F>
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
        {
            ParMapSlice {
                slice: self.slice,
                f,
            }
        }

        /// Runs `f` on every item across the pool.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a T) + Sync,
        {
            pool::run(self.slice.len(), &|i| f(&self.slice[i]));
        }
    }

    /// Pending borrowed-item parallel map.
    pub struct ParMapSlice<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    impl<'a, T, R, F> ParMapSlice<'a, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        /// Executes the map across the pool and collects results in
        /// input order.
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<R>,
        {
            let (slice, f) = (self.slice, &self.f);
            pool::map_indexed(slice.len(), |i| f(&slice[i]))
                .into_iter()
                .collect()
        }

        /// Parallel sum of the mapped values.
        pub fn sum(self) -> R
        where
            R: std::iter::Sum<R>,
        {
            self.collect::<Vec<R>>().into_iter().sum()
        }
    }

    /// Mutable parallel iterator over a slice.
    pub struct ParSliceIterMut<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParSliceIterMut<'a, T> {
        /// Runs `f` on every element, distributing elements across the
        /// pool.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut T) + Sync,
        {
            let slots: Vec<Mutex<Option<&'a mut T>>> =
                self.slice.iter_mut().map(|r| Mutex::new(Some(r))).collect();
            pool::run(slots.len(), &|i| {
                let item = slots[i]
                    .lock()
                    .expect("element slot poisoned")
                    .take()
                    .expect("element taken once");
                f(item);
            });
        }
    }

    /// Mutable parallel chunk iterator over a slice.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Runs `f` on every chunk, distributing chunks across the pool.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            let slots: Vec<Mutex<Option<&'a mut [T]>>> = self
                .slice
                .chunks_mut(self.size)
                .map(|c| Mutex::new(Some(c)))
                .collect();
            pool::run(slots.len(), &|i| {
                let chunk = slots[i]
                    .lock()
                    .expect("chunk slot poisoned")
                    .take()
                    .expect("chunk taken once");
                f(chunk);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_serial() {
        let v = [1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squares: Vec<usize> = (0..4usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9]);
    }

    #[test]
    fn large_collect_preserves_order() {
        let items: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = items.par_iter().map(|x| x * 3).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_element() {
        let mut v = vec![0u32; 4096];
        v.par_iter_mut().for_each(|x| *x += 7);
        assert!(v.iter().all(|x| *x == 7));
        v.par_chunks_mut(100).for_each(|c| {
            for x in c {
                *x *= 2;
            }
        });
        assert!(v.iter().all(|x| *x == 14));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn scope_spawns_borrowing_tasks() {
        let results: Vec<std::sync::Mutex<usize>> =
            (0..8).map(|_| std::sync::Mutex::new(0)).collect();
        super::scope(|s| {
            for (i, slot) in results.iter().enumerate() {
                s.spawn(move |_| *slot.lock().unwrap() = i + 1);
            }
        });
        let got: Vec<usize> = results.iter().map(|m| *m.lock().unwrap()).collect();
        assert_eq!(got, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scope_spawn_runs() {
        let flag = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    flag.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        });
        assert_eq!(flag.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_reports_thread_count() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn parallel_map_is_bit_deterministic() {
        // Same computation twice — identical f32 bits (no reduction
        // reordering anywhere in the pipeline).
        let xs: Vec<f32> = (0..5000).map(|i| i as f32 * 0.001).collect();
        let run = || -> Vec<f32> { xs.par_iter().map(|x| (x.sin() * 1.7).exp()).collect() };
        let (a, b) = (run(), run());
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
