//! Offline stand-in for `rayon`: the `par_iter`/`into_par_iter` entry
//! points resolve to plain sequential `std` iterators, so all downstream
//! adapters (`map`, `collect`, …) are the standard `Iterator` methods.
//! Semantics are identical to real rayon for the pure map/collect
//! pipelines this workspace runs — just single-threaded. Replace with
//! the real crate (same call sites, no code changes) for parallelism.

/// Sequential re-interpretation of `rayon::prelude`.
pub mod prelude {
    /// `into_par_iter()` for any owned iterable (ranges, `Vec`, …).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the sequential iterator standing in for the parallel one.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` / `par_iter_mut()` on slices (and `Vec` via deref).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_serial() {
        let v = [1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squares: Vec<usize> = (0..4usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9]);
    }
}
