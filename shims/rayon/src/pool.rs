//! The execution engine behind the `rayon` shim: a persistent pool of
//! `std::thread` workers draining a shared queue of *parallel-for* jobs.
//!
//! Design:
//!
//! - One global pool, sized once from `RINGCNN_THREADS` (then
//!   `RAYON_NUM_THREADS`, then [`std::thread::available_parallelism`]).
//!   With an effective size of 1 every entry point runs inline on the
//!   calling thread — the strictly sequential baseline the determinism
//!   tests compare against.
//! - A job is an index range `0..n` plus a caller-borrowed
//!   `&(dyn Fn(usize) + Sync)` body. Workers (and the submitting thread,
//!   which always participates) claim contiguous chunks off a shared
//!   atomic cursor, so load balances dynamically without per-item
//!   synchronization.
//! - The submitting thread blocks until every item has completed, which
//!   is what makes lending a non-`'static` closure to the workers sound:
//!   the borrow outlives every access. That hand-off is the single
//!   `unsafe` in the crate (see the private `JobHandle`).
//! - Because submitters participate, a worker that submits a nested job
//!   drains it itself if no sibling is free — nesting cannot deadlock.
//! - A panic inside the body is caught, the job is drained to the end,
//!   and the payload is re-thrown on the submitting thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One parallel-for job shared between the submitter and the workers.
struct Job {
    /// Caller-borrowed body with its lifetime erased. Only dereferenced
    /// while `remaining > 0`, which `run` guarantees by blocking until
    /// `remaining == 0` before returning.
    body: *const (dyn Fn(usize) + Sync),
    /// Total number of items.
    n: usize,
    /// Items claimed per cursor step.
    chunk: usize,
    /// Next unclaimed item index.
    cursor: AtomicUsize,
    /// Items not yet executed (claimed chunks count down on completion).
    remaining: AtomicUsize,
    /// First panic payload raised by the body, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Signals `remaining == 0` to the submitter.
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `Job` crosses threads by design. The raw `body` pointer is
// only dereferenced by `execute_chunks`, and `run` keeps the pointee
// alive (and the submitting thread blocked) until `remaining` reaches
// zero, so a moved-to thread can never observe a dangling body.
unsafe impl Send for Job {}
// SAFETY: shared access is as safe as moved access here — `body` is a
// `Fn` (immutably called), and every mutable field is an atomic or a
// lock, so concurrent `&Job` use from many workers is data-race free.
unsafe impl Sync for Job {}

impl Job {
    /// Claims and executes chunks until the cursor is exhausted.
    fn execute_chunks(&self) {
        loop {
            // ordering: the claim only needs atomicity — each index is
            // handed to exactly one worker by the RMW itself, and the
            // happens-before edge for the data is the AcqRel on
            // `remaining` below, not the cursor.
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                return;
            }
            let end = (start + self.chunk).min(self.n);
            // SAFETY: `remaining >= end - start > 0` items are still
            // outstanding (they include this claimed chunk), so the
            // submitter is still blocked in `run` and the borrow behind
            // `body` is alive.
            let body = unsafe { &*self.body };
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    body(i);
                }
            }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            let before = self.remaining.fetch_sub(end - start, Ordering::AcqRel);
            if before == end - start {
                // Last outstanding items: wake the submitter. Lock the
                // mutex first so the notify cannot race the wait.
                let _guard = self.done_lock.lock().expect("done lock poisoned");
                self.done_cv.notify_all();
            }
        }
    }

    /// Whether every item has been claimed (the job can leave the queue).
    fn exhausted(&self) -> bool {
        // ordering: advisory read for queue housekeeping only; a stale
        // value just requeues the job once more, it guards no data.
        self.cursor.load(Ordering::Relaxed) >= self.n
    }
}

/// Worker-shared state: the job queue and its wakeup signal.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
}

/// The process-global pool.
struct Pool {
    shared: Arc<Shared>,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Reads the configured thread count: `RINGCNN_THREADS`, then
/// `RAYON_NUM_THREADS`, then the machine's available parallelism.
/// Invalid or zero values fall back to the next source.
fn configured_threads() -> usize {
    for var in ["RINGCNN_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        // The submitter always participates, so spawn `threads - 1`
        // workers; a pool of 1 spawns none and runs everything inline.
        for worker in 1..threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ringcnn-worker-{worker}"))
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, threads }
    })
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                // Drop jobs whose items have all been claimed; execution
                // of the final chunks finishes on the claiming threads.
                while queue.front().is_some_and(|j| j.exhausted()) {
                    queue.pop_front();
                }
                match queue.front() {
                    Some(job) => break Arc::clone(job),
                    None => queue = shared.available.wait(queue).expect("queue poisoned"),
                }
            }
        };
        job.execute_chunks();
    }
}

/// The effective pool size (what `rayon::current_num_threads` reports).
pub fn current_num_threads() -> usize {
    pool().threads
}

/// Runs `body(i)` for every `i in 0..n`, distributing chunks across the
/// pool. Returns once every item has executed; panics from the body are
/// re-thrown here. Sequential (and in submission order) when the pool
/// size is 1.
pub fn run(n: usize, body: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let pool = pool();
    if pool.threads <= 1 || n == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    // Oversplit relative to the pool so late-arriving workers still find
    // work, but keep chunks big enough to amortize queue traffic.
    let chunk = n.div_ceil(pool.threads * 4).max(1);
    // SAFETY: lifetime erasure of the borrowed body. The erased pointer
    // is only dereferenced while `remaining > 0`, and this function does
    // not return until `remaining == 0` — the borrow outlives every use.
    let body: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(body)
    };
    let job = Arc::new(Job {
        body,
        n,
        chunk,
        cursor: AtomicUsize::new(0),
        remaining: AtomicUsize::new(n),
        panic: Mutex::new(None),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
    });
    {
        let mut queue = pool.shared.queue.lock().expect("queue poisoned");
        queue.push_back(Arc::clone(&job));
    }
    pool.shared.available.notify_all();
    // Participate: the submitter is one of the pool's threads. This also
    // guarantees forward progress when every worker is busy (e.g. the
    // nested job of a worker that is itself running a parallel section).
    job.execute_chunks();
    // Wait for chunks claimed by other workers to finish.
    {
        let mut guard = job.done_lock.lock().expect("done lock poisoned");
        while job.remaining.load(Ordering::Acquire) > 0 {
            guard = job.done_cv.wait(guard).expect("done lock poisoned");
        }
    }
    let payload = job.panic.lock().expect("panic slot poisoned").take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Parallel ordered map: returns `f(0), f(1), …, f(n-1)` as a `Vec` in
/// index order regardless of execution order.
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run(n, &|i| {
        *slots[i].lock().expect("result slot poisoned") = Some(f(i));
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("item executed")
        })
        .collect()
}

/// A boxed one-shot task with a borrowed environment.
pub type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Runs a batch of one-shot tasks across the pool (each exactly once).
pub fn run_tasks(tasks: Vec<Task<'_>>) {
    let slots: Vec<Mutex<Option<Task<'_>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run(slots.len(), &|i| {
        let task = slots[i]
            .lock()
            .expect("task slot poisoned")
            .take()
            .expect("task runs once");
        task();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        run(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_indexed_preserves_order() {
        let out = map_indexed(257, |i| i * i);
        assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_runs_complete() {
        // A parallel section inside a parallel section must not deadlock
        // (submitters drain their own jobs).
        let out = map_indexed(8, |i| {
            map_indexed(8, move |j| i * 8 + j).iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(64, &|i| {
                if i == 13 {
                    panic!("boom at {i}");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must reach the submitter");
        // The pool must still be usable afterwards.
        assert_eq!(map_indexed(4, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn run_tasks_executes_each_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_tasks(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }
}
