//! Offline stand-in for `rand` 0.8, covering the trait surface this
//! workspace uses: `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! half-open and inclusive numeric ranges, and `Rng::gen` for floats and
//! integers. The uniform-sampling details differ from upstream `rand`
//! (integer sampling uses a simple modulo reduction), so streams are
//! deterministic per seed but not bit-identical to the real crate.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform sample of the full domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used to expand `u64` seeds into full seed arrays.
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their "standard" domain.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty float range");
                self.start + (self.end - self.start) * <$t as Standard>::sample_standard(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range");
                lo + (hi - lo) * <$t as Standard>::sample_standard(rng)
            }
        }
    )*};
}
range_float!(f32, f64);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sequence helpers (`SliceRandom`).
pub mod seq {
    use super::RngCore;

    /// Shuffle and choice operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// `rand::prelude` compatibility.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = rng.gen_range(2..6usize);
            assert!((2..6).contains(&u));
            let i: i64 = rng.gen_range(-10_000i64..10_000);
            assert!((-10_000..10_000).contains(&i));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = Lcg(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
