//! Offline stand-in for `criterion`: same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `Bencher::
//! iter`) with a simple wall-clock measurement loop and a one-line text
//! report per benchmark. No statistics, plots, or baselines — enough to
//! run and eyeball the workspace's benches offline.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        println!("{:<40} {report}", id.into());
        self
    }

    /// Sets the sample count for subsequent `bench_function` calls.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Measures one closure under this group's settings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        println!("{}/{:<32} {report}", self.name, id.into());
        self
    }

    /// Ends the group (marker for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    f: &mut F,
) -> String {
    // Warm-up & calibration: find an iteration count that takes roughly
    // measurement/samples per sample.
    let mut iters = 1u64;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
        iters = iters.saturating_mul(2).min(1 << 20);
    }
    let budget_per_sample = measurement / samples.max(1) as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters_per_sample as u32;
        best = best.min(per);
        total += b.elapsed;
    }
    let mean = total / (samples.max(1) as u32 * iters_per_sample as u32).max(1);
    format!(
        "mean {:>12?}  best {:>12?}  ({} iters/sample)",
        mean, best, iters_per_sample
    )
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_without_panicking() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }
}
