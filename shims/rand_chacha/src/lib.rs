//! Offline stand-in for `rand_chacha`. The ChaCha keystream itself is a
//! faithful implementation (quarter-round for quarter-round), seeded from
//! a 32-byte key with a zero nonce; it is deterministic per seed but not
//! guaranteed word-for-word identical to upstream `rand_chacha`'s stream
//! layout. Everything in this workspace only needs seeded determinism.

use rand::{RngCore, SeedableRng};

/// ChaCha block function with `R` double-rounds (so `ChaChaCore<4>` is
/// ChaCha8, `<6>` ChaCha12, `<10>` ChaCha20).
#[derive(Clone, Debug)]
pub struct ChaChaCore<const R: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    buf_pos: usize,
}

impl<const R: usize> ChaChaCore<R> {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn new(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            buf_pos: 16,
        }
    }

    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..R {
            // Column round.
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, init) in state.iter_mut().zip(initial) {
            *s = s.wrapping_add(init);
        }
        self.buf = state;
        self.buf_pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const R: usize> RngCore for ChaChaCore<R> {
    fn next_u32(&mut self) -> u32 {
        if self.buf_pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.buf_pos];
        self.buf_pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const R: usize> SeedableRng for ChaChaCore<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(seed)
    }
}

/// ChaCha with 8 rounds (4 double-rounds).
pub type ChaCha8Rng = ChaChaCore<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaCore<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaCore<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_keystream_matches_rfc8439_block1() {
        // RFC 8439 §2.3.2 test vector: key 00 01 02 … 1f, counter 1,
        // nonce 0. Our nonce is fixed at zero and the counter starts at
        // 0, so block index 1 of our stream uses counter=1, nonce=0 —
        // comparable to the RFC vector only in construction, not bytes
        // (the RFC uses a non-zero nonce). Instead, check the first
        // block against a locally computed ChaCha20(key=0, nonce=0)
        // reference value published in multiple implementations:
        // 76 b8 e0 ad a0 f1 3d 90 …
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let w0 = rng.next_u32();
        assert_eq!(w0.to_le_bytes(), [0x76, 0xb8, 0xe0, 0xad]);
    }

    #[test]
    fn gen_range_works_through_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let v: f32 = rng.gen_range(0.3..1.0);
            assert!((0.3..1.0).contains(&v));
        }
    }
}
