//! End-to-end `ringcnn-serve` demo, fully in-process: train a small
//! denoiser, export it to the versioned model format, load it through
//! the registry, serve it over TCP, and denoise an image through the
//! protocol — verifying the served output matches the local model
//! bit for bit.
//!
//! ```sh
//! cargo run --release --example serve_denoise
//! ```

use ringcnn_imaging::degrade::add_gaussian_noise;
use ringcnn_imaging::metrics::psnr;
use ringcnn_imaging::synthetic::{dataset, DatasetProfile};
use ringcnn_nn::prelude::*;
use ringcnn_nn::serialize::{export_model, model_to_json};
use ringcnn_serve::prelude::*;
use ringcnn_tensor::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Train a small DnERNet-PU denoiser (σ = 25) on synthetic data
    //    (the repo's quick-scale training recipe).
    let sigma = 25.0;
    let alg = Algebra::ri_fh(2);
    let spec = ModelSpec::DnErnet {
        b: 2,
        r: 2,
        n_extra: 0,
        width: 16,
        channels_io: 1,
    };
    let mut model = spec.build(&alg, 42);
    let clean = dataset(DatasetProfile::Train, 16, 64);
    let noisy = add_gaussian_noise(&clean, sigma, 9);
    println!("training {} over {} …", spec.label(), alg.label());
    let report = train_regression(
        &mut model,
        &noisy,
        &clean,
        &TrainConfig {
            steps: 250,
            batch: 4,
            lr: 3e-3,
            decay_after: 0.8,
            seed: 11,
        },
    );
    println!("final training loss: {:.5}", report.final_loss);

    // 2. Export → versioned model file → registry (the serve load path).
    let dir = std::env::temp_dir().join(format!("ringcnn_serve_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create model dir");
    let file = export_model("dn_ernet_ri2", spec, AlgebraSpec::of(&alg), &mut model)
        .expect("export trained model");
    std::fs::write(dir.join("dn_ernet_ri2.json"), model_to_json(&file)).expect("write model file");
    let registry = ModelRegistry::new();
    let names = registry.load_dir(&dir).expect("load model dir");
    println!("registry loaded {names:?} from {}", dir.display());

    // 3. Serve it over TCP (ephemeral loopback port).
    let server = Server::start(
        Arc::new(registry),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig {
                workers: 2,
                max_batch: 8,
                max_wait: Duration::from_millis(2),
                queue_cap: 64,
                ..SchedulerConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    println!("serving on {}", server.addr());

    // 4. Denoise a fresh image through the protocol.
    let clean_eval = dataset(DatasetProfile::Set5, 32, 4);
    let noisy_eval = add_gaussian_noise(&clean_eval, sigma, 77);
    let mut client =
        Client::connect_retry(&server.addr().to_string(), Duration::from_secs(5)).expect("connect");
    for info in client.list_models().expect("list") {
        println!(
            "model {}: {} over {} ({} params, backend {})",
            info.name, info.arch, info.algebra, info.params, info.backend
        );
    }
    let mut served = Tensor::zeros(noisy_eval.shape());
    for n in 0..noisy_eval.shape().n {
        let frame = noisy_eval.extract_window(
            n,
            ringcnn_tensor::tile::Window::full(noisy_eval.shape().h, noisy_eval.shape().w),
        );
        let reply = client.infer("dn_ernet_ri2", &frame).expect("infer");
        // The served result must be exactly what the local model says.
        assert_eq!(
            reply.output.as_slice(),
            model.forward(&frame, false).as_slice(),
            "served output must be bit-identical to the local forward"
        );
        served.paste_window(
            n,
            0,
            0,
            &reply.output,
            ringcnn_tensor::tile::Window::full(reply.output.shape().h, reply.output.shape().w),
        );
    }
    println!(
        "PSNR: noisy {:.2} dB → served denoise {:.2} dB",
        psnr(&noisy_eval, &clean_eval),
        psnr(&served, &clean_eval)
    );

    let stats = client.stats().expect("stats");
    println!(
        "served {} request(s), {} batch(es), mean batch {:.2}, p50 {:.2} ms",
        stats.completed, stats.batches, stats.mean_batch, stats.latency_ms.p50
    );

    // 5. Graceful shutdown (drains in-flight work, joins every thread).
    client.shutdown_server().expect("shutdown verb");
    server.wait();
    std::fs::remove_dir_all(&dir).ok();
    println!("server drained and stopped.");
}
