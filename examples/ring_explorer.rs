//! Explore the algebra: run the §III-C proper-ring search live, print the
//! discovered classes, and estimate granks with CP-ALS.
//!
//! ```sh
//! cargo run --release --example ring_explorer
//! ```

use ringcnn::prelude::*;
use ringcnn_algebra::grank::{estimate_rank, CpOptions};
use ringcnn_algebra::search::{search_proper_rings, SearchOptions};

fn main() {
    println!("== CP-ALS generic-rank estimation (the CP-ARLS methodology) ==\n");
    for kind in [
        RingKind::Rh(2),
        RingKind::Complex,
        RingKind::Rh(4),
        RingKind::Ro4,
        RingKind::Rh4I,
    ] {
        let ring = Ring::from_kind(kind);
        let est = estimate_rank(&ring.indexing_tensor(), 8, &CpOptions::default());
        println!(
            "  grank({:<6}) = {}  (residual sweep: {:?})",
            kind.label(),
            est.rank,
            est.residuals
                .iter()
                .map(|(r, e)| format!("r{r}:{e:.1e}"))
                .collect::<Vec<_>>()
        );
    }

    println!("\n== Exhaustive proper-ring search under (C1)-(C3) ==");
    for n in [2usize, 4] {
        let report = search_proper_rings(n, &SearchOptions::default());
        println!(
            "\n  n = {n}: {} non-isomorphic permutation class(es)",
            report.classes.len()
        );
        for (i, class) in report.classes.iter().enumerate() {
            println!(
                "    class {i}: P = {:?}\n      {} commutative sign patterns → {} associative variants, min grank {} ({} minimal)",
                class.perm,
                class.num_sign_patterns,
                class.variants.len(),
                class.min_grank,
                class.minimal_variants().len(),
            );
        }
    }
    println!(
        "\nPaper claims (§III-C): n=4 has exactly two non-isomorphic permutations\n\
         with minimum granks 4 (RH4, RO4) and 5 (the cyclic twists RH4-I/II,\n\
         RO4-I/II); n=2 admits only RH2 and C."
    );
}
