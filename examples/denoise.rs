//! Train a ring-tensor denoiser end to end and compare algebras.
//!
//! Trains three DnERNet-PU models — real-valued, (RI2, fH), (RI4, fH) —
//! on the same synthetic data and prints PSNR, weight counts, and
//! multiplication counts. Pass `--standard` for a longer run.
//!
//! ```sh
//! cargo run --release --example denoise
//! ```

use ringcnn::prelude::*;

fn main() {
    let standard = std::env::args().any(|a| a == "--standard");
    let scale = if standard {
        ExperimentScale::standard()
    } else {
        ExperimentScale::quick()
    };
    let scenario = Scenario::Denoise { sigma: 25.0 };
    println!("Training denoisers (σ = 25) at {:?} scale…\n", scale.steps);

    let noisy_psnr = {
        let pairs = eval_pairs(scenario, DatasetProfile::Set5, &scale);
        psnr(&pairs.inputs, &pairs.targets)
    };
    println!("noisy input: {noisy_psnr:.2} dB\n");

    for (label, algebra) in [
        ("real (eCNN)", Algebra::real()),
        ("(RI2, fH)", Algebra::ri_fh(2)),
        ("(RI4, fH)", Algebra::ri_fh(4)),
    ] {
        let mut model = build_model(scenario, ThroughputTarget::Uhd30, &algebra, 42);
        let result = run_quality(label, &mut model, scenario, &scale, 7);
        println!(
            "{label:>12}: {:.2} dB | {:>6} weights | {:>6.0} mults/px",
            result.psnr_db, result.params, result.mults_per_pixel
        );
    }
    println!(
        "\nExpected shape (matches the paper): all models denoise well; the ring\n\
         models use ~n× fewer weights and multiplications at similar PSNR."
    );
}
