//! The quantized serving walkthrough: calibrate a model per algebra,
//! export `ringcnn-qmodel/v1` beside `ringcnn-model/v1`, load both
//! through the registry, and serve the two precisions over TCP —
//! printing the fp64-vs-quant PSNR table the README documents.
//!
//! ```sh
//! cargo run --release -p ringcnn-serve --example quantized_backend
//! ```

use ringcnn_imaging::metrics::psnr;
use ringcnn_nn::prelude::*;
use ringcnn_quant::prelude::*;
use ringcnn_serve::prelude::*;
use ringcnn_tensor::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. The per-algebra fidelity table: one VDSR body per Table-I
    //    acceptance ring, calibrated on a synthetic batch. Untrained
    //    weights are the worst case for dynamic-range fitting — trained
    //    models sit several dB higher.
    let algebras = [
        Algebra::real(),
        Algebra::ri_fh(2),
        Algebra::ri_fh(4),
        Algebra::with_fcw(ringcnn_algebra::ring::RingKind::Rh(4)),
        Algebra::with_fcw(ringcnn_algebra::ring::RingKind::Rh4I),
    ];
    println!("fp-vs-quant fidelity, VDSR d3c8, untrained weights, 8-bit:");
    for alg in &algebras {
        let mut model = ringcnn_nn::models::vdsr::vdsr(alg, 3, 8, 1, 21);
        let batch = Tensor::random_uniform(Shape4::new(4, 1, 16, 16), 0.0, 1.0, 23);
        let cal = calibrate(&mut model, &batch, QuantOptions::default()).unwrap();
        println!("  {:18} {:6.1} dB", alg.label(), cal.psnr_vs_float);
    }

    // 2. Calibrate + export an FFDNet pair and serve both precisions.
    let dir = std::env::temp_dir().join(format!("ringcnn_quant_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let alg = Algebra::real();
    let spec = ModelSpec::Ffdnet {
        depth: 3,
        width: 8,
        channels_io: 1,
    };
    let mut model = spec.build(&alg, 41);
    let file =
        ringcnn_nn::serialize::export_model("ffdnet_real", spec, AlgebraSpec::of(&alg), &mut model)
            .unwrap();
    std::fs::write(
        dir.join("ffdnet_real.json"),
        ringcnn_nn::serialize::model_to_json(&file),
    )
    .unwrap();
    let batch = Tensor::random_uniform(Shape4::new(4, 1, 32, 32), 0.0, 1.0, 43);
    let qfile = calibrate_to_qmodel(
        "ffdnet_real",
        &spec.label(),
        &alg.label(),
        &mut model,
        &batch,
        QuantOptions::default(),
    )
    .unwrap();
    std::fs::write(dir.join("ffdnet_real.q.json"), qmodel_to_json(&qfile)).unwrap();
    println!(
        "\nexported {} (+ quantized pipeline, calibration {:.1} dB) to {}",
        file.name,
        qfile.calibration_psnr,
        dir.display()
    );

    let reg = ModelRegistry::new();
    reg.load_dir(&dir).unwrap();
    let server = Server::start(Arc::new(reg), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr().to_string()).unwrap();
    let x = Tensor::random_uniform(Shape4::new(1, 1, 32, 32), 0.0, 1.0, 47);
    let fp = client.infer("ffdnet_real", &x).unwrap();
    let quant = client
        .infer_with("ffdnet_real", &x, Precision::Quant)
        .unwrap();
    println!(
        "served fp64 vs quant over TCP: {:.1} dB (batch sizes {} / {})",
        psnr(&fp.output, &quant.output),
        fp.batch_size,
        quant.batch_size
    );
    assert_eq!(
        quant.output.as_slice(),
        qfile.model.forward(&x).as_slice(),
        "served quant output must equal the local integer pipeline"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("done");
}
