//! ×4 super-resolution with ring tensors: train an SR4ERNet over
//! (RI4, fH), compare against bicubic interpolation, and quantize the
//! result to 8 bits with component-wise Q-formats.
//!
//! ```sh
//! cargo run --release --example super_resolution
//! ```

use ringcnn::prelude::*;

fn main() {
    let standard = std::env::args().any(|a| a == "--standard");
    let scale = if standard {
        ExperimentScale::standard()
    } else {
        ExperimentScale::quick()
    };
    let scenario = Scenario::Sr4;

    let bicubic = classical_baseline(scenario, &scale);
    println!("bicubic ×4 baseline: {bicubic:.2} dB");

    let algebra = Algebra::ri_fh(4);
    let mut model = build_model(scenario, ThroughputTarget::Uhd30, &algebra, 42);
    let result = run_quality("(RI4,fH)", &mut model, scenario, &scale, 7);
    println!(
        "trained {}: {:.2} dB (float)",
        algebra.label(),
        result.psnr_db
    );

    // Quantize to 8-bit fixed point with the paper's component-wise
    // Q-formats and the on-the-fly directional ReLU.
    let calib = training_pairs(scenario, &scale);
    let qm = QuantizedModel::quantize(&mut model, &calib.inputs, QuantOptions::default());
    let mut total = 0.0;
    let profiles = eval_profiles(scenario);
    for p in &profiles {
        let pairs = eval_pairs(scenario, *p, &scale);
        total += psnr(&qm.forward(&pairs.inputs), &pairs.targets);
    }
    let q_psnr = total / profiles.len() as f64;
    println!(
        "8-bit quantized:     {q_psnr:.2} dB (drop {:.3} dB)",
        result.psnr_db - q_psnr
    );

    // The same model with the conventional MAC-based directional ReLU
    // (quantize-before-transform) — the paper's ~0.2 dB warning.
    let qm_mac = QuantizedModel::quantize(
        &mut model,
        &calib.inputs,
        QuantOptions {
            on_the_fly_drelu: false,
            ..QuantOptions::default()
        },
    );
    let mut total = 0.0;
    for p in &profiles {
        let pairs = eval_pairs(scenario, *p, &scale);
        total += psnr(&qm_mac.forward(&pairs.inputs), &pairs.targets);
    }
    println!(
        "MAC-based fH:        {:.2} dB",
        total / profiles.len() as f64
    );
}
