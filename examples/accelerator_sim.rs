//! Run a quantized RingCNN model on the cycle-approximate eRingCNN
//! simulator: bit-exact outputs plus cycles, utilization, throughput,
//! energy-per-pixel, and memory footprints.
//!
//! ```sh
//! cargo run --release --example accelerator_sim
//! ```

use ringcnn::prelude::*;
use ringcnn_esim::prelude::*;
use ringcnn_hw::prelude::{layout_report, AcceleratorConfig, TechParams};

fn main() {
    let scale = ExperimentScale::quick();
    let scenario = Scenario::Denoise { sigma: 25.0 };
    let tech = TechParams::tsmc40();

    for (accel, algebra) in [
        (AcceleratorConfig::ecnn(), Algebra::real()),
        (AcceleratorConfig::eringcnn_n2(), Algebra::ri_fh(2)),
        (AcceleratorConfig::eringcnn_n4(), Algebra::ri_fh(4)),
    ] {
        // Train + quantize a model matched to the accelerator's algebra.
        let mut model = build_model(scenario, ThroughputTarget::Uhd30, &algebra, 42);
        let _ = train_model(&mut model, scenario, &scale, 7);
        let calib = training_pairs(scenario, &scale);
        let qm = QuantizedModel::quantize(&mut model, &calib.inputs, QuantOptions::default());

        // One 32x32 test image through the simulator.
        let clean = generate(PatternKind::OrientedTexture, 32, 32, 3);
        let noisy = add_gaussian_noise(&clean, 25.0, 1);
        let (output, report) = simulate(&qm, &noisy, &accel, &tech);
        let exact = output.as_slice() == qm.forward(&noisy).as_slice();

        let layout = layout_report(&accel, &tech);
        println!("=== {} ({}) ===", accel.name, algebra.label());
        println!(
            "  layout:       {:.2} mm², {:.2} W, {:.1} equivalent TOPS",
            layout.area_mm2, layout.power_w, layout.tops_equivalent
        );
        println!(
            "  simulation:   {} cycles, {:.1}% utilization, bit-exact: {exact}",
            report.cycles,
            report.utilization * 100.0
        );
        println!(
            "  quality:      {:.2} dB (noisy was {:.2} dB)",
            psnr(&output, &clean),
            psnr(&noisy, &clean)
        );
        println!(
            "  energy:       {:.2} nJ/pixel | weights {:.1} KB (fit: {})",
            report.nj_per_output_pixel,
            report.memory.weight_bytes as f64 / 1024.0,
            report.weights_fit
        );
        println!();
    }
    println!(
        "Shape: all three produce comparable PSNR; the ring configurations spend\n\
         n× less physical work and proportionally less energy per pixel."
    );
}
