//! Quickstart: rings, ring convolution, and the directional ReLU in a
//! dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ringcnn::prelude::*;

fn main() {
    // 1. A ring is ordinary arithmetic over n-tuples. The paper's
    //    proposed ring RI multiplies component-wise…
    let ri4 = Ring::from_kind(RingKind::Ri(4));
    let g = [0.5f32, -1.0, 2.0, 0.25];
    let x = [1.0f32, 1.0, 1.0, 1.0];
    let mut z = [0.0f32; 4];
    ri4.mac_f32(&g, &x, &mut z);
    println!("RI4:  {g:?} · {x:?} = {z:?}");

    // …while e.g. the complex field mixes components with signs.
    let c = Ring::from_kind(RingKind::Complex);
    let mut zc = [0.0f32; 2];
    c.mac_f32(&[1.0, 2.0], &[3.0, 4.0], &mut zc);
    println!("C:    (1+2i)(3+4i) = {zc:?}  (expect [-5, 10])");

    // 2. Every proper ring has a fast algorithm: m real multiplications
    //    instead of n². The circulant ring (CirCNN-alike) needs 5:
    let circ = Ring::from_kind(RingKind::Rh4I);
    println!(
        "RH4-I: n² = 16 → m = {} multiplications (Winograd/CRT), verified: {}",
        circ.fast().m(),
        circ.fast().tensor().distance(&circ.indexing_tensor()) < 1e-9,
    );

    // 3. The directional ReLU fH(y) = H·fcw(H·y) mixes tuple components
    //    only at the non-linearity (the paper's key idea):
    let fh = DirectionalRelu::fh(4);
    let mut y = [1.0f32, -3.0, 0.5, 0.25];
    fh.forward(&mut y);
    println!("fH([1, -3, 0.5, 0.25]) = {y:?}");

    // 4. Build a tiny (RI4, fH) denoiser and run one forward pass.
    let algebra = Algebra::ri_fh(4);
    let mut model = build_model(
        Scenario::Denoise { sigma: 25.0 },
        ThroughputTarget::Uhd30,
        &algebra,
        42,
    );
    let image = generate(PatternKind::ValueNoise, 32, 32, 7);
    let noisy = add_gaussian_noise(&image, 25.0, 1);
    let denoised = predict(&mut model, &noisy);
    println!(
        "untrained {} model: noisy {:.2} dB → output {:.2} dB (train it to improve!)",
        algebra.label(),
        psnr(&noisy, &image),
        psnr(&denoised, &image),
    );
    println!(
        "model: {} stored weights, {:.0} real mults/pixel (the real-valued\n\
         version would need ~{}× more weights)",
        model.num_params(),
        mults_per_input_pixel(&mut model),
        algebra.n(),
    );
}
